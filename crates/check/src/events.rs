//! Catalog and preset lints (`C…`): validation of the event namespace and
//! of derived-metric preset tables.
//!
//! | Rule | Severity | Finding |
//! |------|----------|---------|
//! | C001 | Error    | event name does not survive a parse round-trip |
//! | C002 | Error    | event carries duplicate qualifier keys |
//! | C003 | Error    | two catalog entries share one name |
//! | C004 | Error    | preset term references an event absent from the catalog |
//! | C005 | Warning  | preset coefficient with magnitude below [`COEFF_EPS`] |
//! | C006 | Warning  | preset with no terms |
//! | C007 | Error    | preset backward error is negative or non-finite |
//! | C008 | Warning  | catalog entry with an empty description |
//! | C009 | Error    | preset file does not parse |

use crate::diag::{Diagnostic, Severity};
use catalyze_events::{EventCatalog, EventName, PresetTable};
use std::collections::HashSet;

/// Coefficients below this magnitude are numerically indistinguishable from
/// the zero terms the definition stage is supposed to prune.
pub(crate) const COEFF_EPS: f64 = 1e-12;

/// Validates one event catalog. `name` labels the diagnostics.
pub fn check_catalog(name: &str, catalog: &EventCatalog) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for (id, info) in catalog.iter() {
        let rendered = info.name.to_string();
        let loc = format!("catalog {name}, event {} ({rendered})", id.0);

        // C001: the canonical rendering must parse back to the same name —
        // otherwise the event cannot be addressed by string, which is how
        // both the CLI and the PAPI preset format refer to it.
        match rendered.parse::<EventName>() {
            Ok(parsed) if parsed == info.name => {}
            Ok(parsed) => out.push(Diagnostic::new(
                "C001",
                Severity::Error,
                loc.clone(),
                format!(
                    "name does not round-trip: renders as `{rendered}`, parses back as `{parsed}`"
                ),
            )),
            Err(e) => out.push(Diagnostic::new(
                "C001",
                Severity::Error,
                loc.clone(),
                format!("canonical rendering does not parse: {e}"),
            )),
        }

        // C002: duplicate qualifier keys make the qualifier lookup ambiguous.
        let mut keys: HashSet<&str> = HashSet::new();
        for q in &info.name.qualifiers {
            if !keys.insert(q.key.as_str()) {
                out.push(Diagnostic::new(
                    "C002",
                    Severity::Error,
                    loc.clone(),
                    format!("duplicate qualifier key `{}`", q.key),
                ));
            }
        }

        // C003: the catalog index maps strings to ids; duplicates shadow.
        if !seen.insert(rendered.clone()) {
            out.push(
                Diagnostic::new("C003", Severity::Error, loc.clone(), "duplicate catalog entry")
                    .with_suggestion("later entries shadow earlier ones in the name index"),
            );
        }

        // C008: descriptions are what `catalyze events` prints to humans.
        if info.description.trim().is_empty() {
            out.push(Diagnostic::new("C008", Severity::Warning, loc, "empty event description"));
        }
    }
    out
}

/// Validates a preset table against the catalog its events must live in.
/// `name` labels the diagnostics.
pub fn check_presets(name: &str, table: &PresetTable, catalog: &EventCatalog) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for preset in &table.presets {
        let loc_preset = format!("presets {name}, metric `{}`", preset.metric);

        // C006: an empty preset evaluates to the constant zero.
        if preset.terms.is_empty() {
            out.push(Diagnostic::new(
                "C006",
                Severity::Warning,
                loc_preset.clone(),
                "preset has no terms and always evaluates to zero",
            ));
        }

        // C007: backward error is a norm ratio; it cannot be negative and
        // a NaN would silently pass every composability threshold.
        if !preset.error.is_finite() || preset.error < 0.0 {
            out.push(Diagnostic::new(
                "C007",
                Severity::Error,
                loc_preset.clone(),
                format!("backward error {} is not a finite non-negative number", preset.error),
            ));
        }

        for (i, term) in preset.terms.iter().enumerate() {
            let loc = format!("{loc_preset}, term {i} ({})", term.event);

            // C004: a dangling event reference means the preset cannot be
            // evaluated on the architecture it claims to describe.
            if catalog.id_of(&term.event.to_string()).is_none() {
                out.push(
                    Diagnostic::new(
                        "C004",
                        Severity::Error,
                        loc.clone(),
                        "term references an event absent from the catalog",
                    )
                    .with_suggestion("regenerate the preset against the current catalog"),
                );
            }

            // C005: the definition stage prunes zero coefficients; terms
            // this small are rounding residue that survived by accident.
            if term.coefficient.abs() < COEFF_EPS {
                out.push(Diagnostic::new(
                    "C005",
                    Severity::Warning,
                    loc,
                    format!(
                        "coefficient {:e} is below {COEFF_EPS:e} and contributes nothing",
                        term.coefficient
                    ),
                ));
            }
        }
    }
    out
}

/// Parses a PAPI-style preset file and validates it against `catalog`.
/// A file that does not parse yields a single C009 error; a file that does
/// goes through [`check_presets`].
pub fn check_preset_file(name: &str, text: &str, catalog: &EventCatalog) -> Vec<Diagnostic> {
    match catalyze_events::from_papi_format(text) {
        Ok(table) => check_presets(name, &table, catalog),
        Err(e) => vec![Diagnostic::new(
            "C009",
            Severity::Error,
            format!("{name}:{}", e.line),
            format!("preset file does not parse: {}", e.reason),
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catalyze_events::{EventDomain, EventInfo, Preset, PresetTerm};

    fn catalog_of(names: &[EventName]) -> EventCatalog {
        let mut cat = EventCatalog::new();
        for n in names {
            cat.add(EventInfo {
                name: n.clone(),
                description: "test event".to_string(),
                domain: EventDomain::Other,
            })
            .expect("unique test events");
        }
        cat
    }

    fn rules(ds: &[Diagnostic]) -> Vec<&str> {
        ds.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn clean_catalog_has_no_findings() {
        let cat = catalog_of(&[
            EventName::cpu("BR_INST_RETIRED"),
            EventName::cpu_q("FP_ARITH_INST_RETIRED", "SCALAR_DOUBLE"),
        ]);
        assert!(check_catalog("t", &cat).is_empty());
    }

    #[test]
    fn duplicate_qualifier_key_is_c002() {
        let name = EventName::cpu_q("EV", "device")
            .with_qualifier(catalyze_events::Qualifier::flag("device"));
        let cat = catalog_of(&[name]);
        assert!(rules(&check_catalog("t", &cat)).contains(&"C002"));
    }

    #[test]
    fn shadowed_entry_is_c003() {
        // `add` rejects duplicates, so inject one the way it happens in the
        // wild: through deserialization of a corrupted serialized catalog
        // (the name index is rebuilt, silently shadowing the first entry).
        let cat = catalog_of(&[EventName::cpu("EV")]);
        let mut v = serde_json::to_value(&cat).expect("catalog serializes");
        if let serde_json::Value::Object(pairs) = &mut v {
            for (key, val) in pairs.iter_mut() {
                if key.as_str() == "events" {
                    if let serde_json::Value::Array(events) = val {
                        let first = events[0].clone();
                        events.push(first);
                    }
                }
            }
        }
        let mut corrupt: EventCatalog =
            serde_json::from_value(&v).expect("corrupted catalog deserializes");
        corrupt.rebuild_index();
        assert_eq!(corrupt.len(), 2);
        assert!(rules(&check_catalog("t", &corrupt)).contains(&"C003"));
    }

    #[test]
    fn empty_description_is_c008() {
        let mut cat = EventCatalog::new();
        cat.add(EventInfo {
            name: EventName::cpu("EV"),
            description: "  ".to_string(),
            domain: EventDomain::Other,
        })
        .expect("unique");
        assert_eq!(rules(&check_catalog("t", &cat)), vec!["C008"]);
    }

    #[test]
    fn dangling_event_is_c004() {
        let cat = catalog_of(&[EventName::cpu("KNOWN")]);
        let table = PresetTable {
            title: "t".to_string(),
            presets: vec![Preset {
                metric: "M".to_string(),
                terms: vec![PresetTerm { coefficient: 1.0, event: EventName::cpu("UNKNOWN") }],
                error: 1e-16,
            }],
        };
        assert!(rules(&check_presets("t", &table, &cat)).contains(&"C004"));
    }

    #[test]
    fn tiny_coefficient_is_c005() {
        let cat = catalog_of(&[EventName::cpu("EV")]);
        let table = PresetTable {
            title: "t".to_string(),
            presets: vec![Preset {
                metric: "M".to_string(),
                terms: vec![PresetTerm { coefficient: 1e-15, event: EventName::cpu("EV") }],
                error: 0.0,
            }],
        };
        let ds = check_presets("t", &table, &cat);
        assert_eq!(rules(&ds), vec!["C005"]);
        assert_eq!(ds[0].severity, Severity::Warning);
    }

    #[test]
    fn preset_file_round_trip_and_parse_failure() {
        let cat = catalog_of(&[EventName::cpu("EV")]);
        let table = PresetTable {
            title: "t".to_string(),
            presets: vec![Preset {
                metric: "M".to_string(),
                terms: vec![PresetTerm { coefficient: 2.0, event: EventName::cpu("EV") }],
                error: 1e-16,
            }],
        };
        let text = catalyze_events::to_papi_format("test-sim", &table);
        assert!(check_preset_file("f", &text, &cat).is_empty());
        let ds = check_preset_file("f", "PRESET,CAT_X,LINEAR,notacoeff*EV", &cat);
        assert_eq!(rules(&ds), vec!["C009"]);
    }

    #[test]
    fn empty_preset_is_c006_and_bad_error_is_c007() {
        let cat = catalog_of(&[EventName::cpu("EV")]);
        let table = PresetTable {
            title: "t".to_string(),
            presets: vec![Preset { metric: "M".to_string(), terms: vec![], error: f64::NAN }],
        };
        let ds = check_presets("t", &table, &cat);
        let got = rules(&ds);
        assert!(got.contains(&"C006"));
        assert!(got.contains(&"C007"));
    }
}
