//! End-to-end tests of the `catalyze` binary: every subcommand, the
//! measurement-file round trip, and the error paths.

use std::process::Command;

fn catalyze(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_catalyze")).args(args).output().expect("binary runs")
}

#[test]
fn no_args_prints_usage() {
    let out = catalyze(&[]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("usage:"), "{err}");
}

#[test]
fn unknown_command_fails() {
    let out = catalyze(&["frobnicate"]);
    assert!(!out.status.success());
}

#[test]
fn unknown_domain_fails() {
    for cmd in ["run", "analyze", "presets", "papi"] {
        let out = catalyze(&[cmd, "not-a-domain"]);
        assert!(!out.status.success(), "{cmd} must reject bad domains");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown domain") || err.contains("usage:"), "{err}");
    }
}

#[test]
fn events_lists_inventories() {
    let out = catalyze(&["events"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"));
    assert!(text.lines().count() > 150);

    let out = catalyze(&["events", "--gpu"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rocm:::SQ_INSTS_VALU_FMA_F64:device=7"));
    assert!(text.lines().count() > 1000);
}

#[test]
fn run_analyze_roundtrip_through_file() {
    let dir = std::env::temp_dir().join(format!("catalyze-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("branch.json");
    let file_str = file.to_str().unwrap();

    let out = catalyze(&["run", "branch", "--out", file_str]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(file.exists());

    let out = catalyze(&["analyze", "branch", "--in", file_str]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("selected events"), "{text}");
    assert!(text.contains("BR_MISP_RETIRED:ALL_BRANCHES"), "{text}");
    assert!(text.contains("Conditional Branches Executed."), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_accepts_threshold_overrides() {
    // A huge tau keeps even noisy events; the command must still succeed.
    let out = catalyze(&["analyze", "branch", "--tau", "1e6", "--alpha", "1e-3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kept"), "{text}");
}

#[test]
fn analyze_set_overrides_and_rejects_unknown_keys() {
    // --set spellings of the --tau/--alpha shorthands.
    let out = catalyze(&["analyze", "branch", "--set", "tau=1e6", "--set", "alpha=1e-3"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kept"), "{text}");

    // Unknown keys and malformed pairs are usage errors (exit 2) on both
    // subcommands that take overrides.
    for cmd in ["analyze", "presets"] {
        let out = catalyze(&[cmd, "branch", "--set", "bogus=1"]);
        assert_eq!(out.status.code(), Some(2), "{cmd} must reject unknown keys");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown threshold key bogus"), "{err}");
    }
    let out = catalyze(&["analyze", "branch", "--set", "tau"]);
    assert_eq!(out.status.code(), Some(2));
    let out = catalyze(&["analyze", "branch", "--set", "tau=abc"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn presets_accepts_set_overrides() {
    // Impossible composability bar: every metric becomes non-composable,
    // so the preset table must come back empty but the command succeed.
    let out = catalyze(&["presets", "branch", "--json", "--set", "composability_threshold=1e-30"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(parsed["presets"].as_array().expect("presets array").len(), 0);
}

#[test]
fn analyze_trace_writes_schema_stable_json() {
    let dir = std::env::temp_dir().join(format!("catalyze-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("trace.json");
    let file_str = file.to_str().unwrap();

    let out = catalyze(&["analyze", "branch", "--trace", file_str]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    // The human summary lands on stdout after the tables.
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("trace\n"), "{text}");
    assert!(text.contains("funnel"), "{text}");
    assert!(text.contains("analyze/branch"), "{text}");

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&file).unwrap()).expect("valid trace JSON");
    assert_eq!(parsed["version"].as_u64(), Some(1));
    let spans = parsed["spans"].as_array().expect("spans array");
    assert!(!spans.is_empty());
    // The benchmark run and the analysis both appear as root spans, each
    // with closed children.
    let names: Vec<&str> = spans.iter().filter_map(|s| s["name"].as_str()).collect();
    assert!(names.contains(&"run/branch"), "{names:?}");
    assert!(names.contains(&"analyze/branch"), "{names:?}");
    for span in spans {
        assert!(span["duration_ns"].as_u64().is_some(), "closed span: {span:?}");
    }
    // Every funnel stage reconciles: kept + sum(dropped) == in.
    let funnel = parsed["funnel"].as_array().expect("funnel array");
    assert_eq!(funnel.len(), 4);
    for stage in funnel {
        let kept = stage["kept"].as_u64().unwrap();
        let input = stage["in"].as_u64().unwrap();
        let dropped: u64 =
            stage["dropped"].as_array().unwrap().iter().map(|d| d["count"].as_u64().unwrap()).sum();
        assert_eq!(kept + dropped, input, "{stage:?}");
    }
    // Linalg counters made it through the stats bridge.
    let counters = parsed["counters"].as_array().expect("counters array");
    let names: Vec<&str> = counters.iter().filter_map(|c| c["name"].as_str()).collect();
    assert!(names.contains(&"linalg.lstsq_solves"), "{names:?}");
    assert!(names.contains(&"runner.points"), "{names:?}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_trace_summary_goes_to_stderr() {
    let out = catalyze(&["run", "branch", "--out", "/dev/null", "--trace"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("run/branch"), "{err}");
    assert!(err.contains("counters"), "{err}");
    // stdout stays reserved for measurement JSON (here redirected to --out).
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("run/branch"), "{text}");
}

#[test]
fn presets_json_is_valid() {
    let out = catalyze(&["presets", "branch", "--json"]);
    assert!(out.status.success());
    let parsed: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON preset table");
    let presets = parsed["presets"].as_array().expect("presets array");
    assert_eq!(presets.len(), 6, "six composable branch metrics");
}

#[test]
fn papi_output_parses_back() {
    let out = catalyze(&["papi", "dtlb"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let table = catalyze_events::from_papi_format(&text).expect("papi output parses");
    assert_eq!(table.presets.len(), 3, "{text}");
    assert!(table.presets.iter().any(|p| p.metric.starts_with("TLB Hits")));
}

#[test]
fn arch_flag_switches_inventory() {
    let out = catalyze(&["events", "--arch", "zen"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("RETIRED_SSE_AVX_FLOPS:ANY"), "{text}");
    assert!(!text.contains("FP_ARITH_INST_RETIRED"), "zen inventory has no Intel names");

    let out = catalyze(&["papi", "branch", "--arch", "zen"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("# architecture: zen-sim"));
    assert!(
        text.contains("1*EX_RET_COND,-1*EX_RET_BRN,1*EX_RET_BRN_TKN"),
        "three-event Taken composition expected: {text}"
    );

    let out = catalyze(&["events", "--arch", "m68k"]);
    assert!(!out.status.success(), "unknown arch rejected");
}

#[test]
fn check_shipped_inputs_are_clean() {
    let out = catalyze(&["check"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("0 error(s)"), "{text}");
}

#[test]
fn check_json_reports_machine_readable_diagnostics() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/bad_presets.papi");
    let out = catalyze(&["check", "--format", "json", "--presets", fixture]);
    assert_eq!(out.status.code(), Some(1), "corrupted fixture must fail the check");
    let parsed: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
    assert_eq!(parsed["errors"].as_u64(), Some(1));
    let diags = parsed["diagnostics"].as_array().expect("diagnostics array");
    let rules: Vec<&str> = diags.iter().filter_map(|d| d["rule"].as_str()).collect();
    assert!(rules.contains(&"C004"), "dangling event must be C004: {rules:?}");
    assert!(rules.contains(&"C005"), "tiny coefficient must be C005: {rules:?}");
}

#[test]
fn check_accepts_valid_preset_file() {
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/good_presets.papi");
    let out = catalyze(&["check", "--presets", fixture]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
}

#[test]
fn check_rejects_bad_flags() {
    let out = catalyze(&["check", "--format", "xml"]);
    assert_eq!(out.status.code(), Some(2));
    let out = catalyze(&["check", "--presets", "/nonexistent/file.papi"]);
    assert_eq!(out.status.code(), Some(2));
    let fixture = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/good_presets.papi");
    let out = catalyze(&["check", "--presets", fixture, "--arch", "m68k"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn metrics_aggregates_repeated_runs() {
    let dir = std::env::temp_dir().join(format!("catalyze-metrics-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let json = dir.join("metrics.json");
    let expo = dir.join("metrics.prom");

    let out = catalyze(&[
        "metrics",
        "branch",
        "--repeat",
        "2",
        "--json",
        json.to_str().unwrap(),
        "--expo",
        expo.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("catalyze_runs_total 2"), "{text}");
    assert!(text.contains("# TYPE catalyze_span_duration_ns histogram"), "{text}");
    assert!(text.contains("catalyze_funnel_drop_rate{stage=\"noise\"}"), "{text}");
    // The --expo file holds exactly what was printed.
    assert_eq!(std::fs::read_to_string(&expo).unwrap(), text);

    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).expect("valid metrics JSON");
    assert_eq!(parsed["version"].as_u64(), Some(1));
    assert_eq!(parsed["schema"].as_str(), Some("metrics.v1"));
    assert_eq!(parsed["runs"].as_u64(), Some(2));
    let spans = parsed["spans"].as_array().expect("spans array");
    let names: Vec<&str> = spans.iter().filter_map(|s| s["name"].as_str()).collect();
    assert!(names.contains(&"analyze/branch"), "{names:?}");
    for span in spans {
        assert_eq!(span["count"].as_u64(), Some(2), "two runs folded: {span:?}");
        let (p50, p99) = (span["p50_ns"].as_u64().unwrap(), span["p99_ns"].as_u64().unwrap());
        assert!(p50 <= p99, "{span:?}");
    }
    // Counters are exactly double a single run's (the simulation is
    // deterministic at fixed scale).
    let counters = parsed["counters"].as_array().expect("counters array");
    let runner_points = counters
        .iter()
        .find(|c| c["name"].as_str() == Some("runner.points"))
        .expect("runner.points counter");
    assert_eq!(runner_points["total"].as_u64(), Some(22), "11 points x 2 runs");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_rejects_bad_repeat_and_unknown_domain() {
    let out = catalyze(&["metrics", "branch", "--repeat", "0"]);
    assert_eq!(out.status.code(), Some(2));
    let out = catalyze(&["metrics", "branch", "--repeat", "many"]);
    assert_eq!(out.status.code(), Some(2));
    let out = catalyze(&["metrics", "not-a-domain"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn analyze_metrics_flag_prints_exposition_and_writes_json() {
    let dir = std::env::temp_dir().join(format!("catalyze-anmetrics-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("metrics.json");

    let out = catalyze(&["analyze", "branch", "--metrics", file.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("selected events"), "analysis tables still print: {text}");
    assert!(text.contains("catalyze_runs_total 1"), "{text}");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&file).unwrap()).expect("valid metrics JSON");
    assert_eq!(parsed["schema"].as_str(), Some("metrics.v1"));
    assert_eq!(parsed["runs"].as_u64(), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}

/// A handcrafted `metrics.v1` document with one span and one counter, so
/// the diff tests are independent of machine timing.
fn metrics_doc(span_ns: u64, counter: u64) -> String {
    format!(
        concat!(
            "{{\"version\": 1, \"schema\": \"metrics.v1\", \"runs\": 1,\n",
            "  \"spans\": [{{\"name\": \"analyze/branch\", \"count\": 1, \"sum_ns\": {ns},\n",
            "    \"min_ns\": {ns}, \"max_ns\": {ns}, \"p50_ns\": {ns}, \"p90_ns\": {ns},\n",
            "    \"p99_ns\": {ns}}}],\n",
            "  \"counters\": [{{\"name\": \"linalg.lstsq_solves\", \"total\": {c}}}],\n",
            "  \"funnel\": []}}\n"
        ),
        ns = span_ns,
        c = counter
    )
}

#[test]
fn trace_diff_passes_identical_artifacts_and_fails_regressions() {
    let dir = std::env::temp_dir().join(format!("catalyze-diff-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let slow = dir.join("slow.json");
    let report = dir.join("diff.json");
    std::fs::write(&base, metrics_doc(1_000_000, 10)).unwrap();
    std::fs::write(&slow, metrics_doc(2_000_000, 10)).unwrap();

    // Identical artifacts pass.
    let out = catalyze(&["trace", "diff", base.to_str().unwrap(), base.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    assert!(String::from_utf8_lossy(&out.stdout).contains("PASS"));

    // A 2x slower span breaks the default 25% gate: exit 1.
    let out = catalyze(&[
        "trace",
        "diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--json",
        report.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FAIL"), "{text}");
    assert!(text.contains("analyze/branch"), "{text}");
    let parsed: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report).unwrap()).expect("valid diff JSON");
    assert_eq!(parsed["schema"].as_str(), Some("trace-diff.v1"));
    assert_eq!(parsed["regressions"].as_u64(), Some(1));

    // Raising the threshold lets the same pair pass.
    let out = catalyze(&[
        "trace",
        "diff",
        base.to_str().unwrap(),
        slow.to_str().unwrap(),
        "--set",
        "diff.max_span_regression=1.5",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_diff_counter_gate_is_opt_in() {
    let dir = std::env::temp_dir().join(format!("catalyze-diffctr-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let cand = dir.join("cand.json");
    std::fs::write(&base, metrics_doc(1_000_000, 10)).unwrap();
    std::fs::write(&cand, metrics_doc(1_000_000, 11)).unwrap();

    // Counters are report-only by default.
    let out = catalyze(&["trace", "diff", base.to_str().unwrap(), cand.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    // Strict equality makes the drifted counter fatal.
    let out = catalyze(&[
        "trace",
        "diff",
        base.to_str().unwrap(),
        cand.to_str().unwrap(),
        "--set",
        "diff.max_counter_delta=0",
    ]);
    assert_eq!(out.status.code(), Some(1), "{}", String::from_utf8_lossy(&out.stdout));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("linalg.lstsq_solves"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_diff_accepts_raw_trace_files() {
    // The --trace artifact (trace schema v1) loads directly.
    let dir = std::env::temp_dir().join(format!("catalyze-difftrace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("trace.json");
    let out = catalyze(&["analyze", "branch", "--trace", file.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = catalyze(&[
        "trace",
        "diff",
        file.to_str().unwrap(),
        file.to_str().unwrap(),
        "--set",
        "diff.max_counter_delta=0",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_diff_rejects_bad_usage() {
    let out = catalyze(&["trace"]);
    assert_eq!(out.status.code(), Some(2));
    let out = catalyze(&["trace", "diff", "/tmp/only-one.json"]);
    assert_eq!(out.status.code(), Some(2));
    let out = catalyze(&["trace", "diff", "/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(out.status.code(), Some(2));

    let dir = std::env::temp_dir().join(format!("catalyze-diffbad-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let good = dir.join("good.json");
    let bad = dir.join("bad.json");
    std::fs::write(&good, metrics_doc(1000, 1)).unwrap();
    std::fs::write(&bad, "not json at all").unwrap();
    let out = catalyze(&["trace", "diff", good.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "{}", String::from_utf8_lossy(&out.stderr));
    let out = catalyze(&[
        "trace",
        "diff",
        good.to_str().unwrap(),
        good.to_str().unwrap(),
        "--set",
        "diff.bogus=1",
    ]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn check_papi_pipeline_output_passes_check() {
    // End-to-end: presets the tool itself exports must pass its own check.
    let dir = std::env::temp_dir().join(format!("catalyze-check-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("branch.papi");
    let out = catalyze(&["papi", "branch"]);
    assert!(out.status.success());
    std::fs::write(&file, &out.stdout).unwrap();
    let out = catalyze(&["check", "--presets", file.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stdout));
    std::fs::remove_dir_all(&dir).ok();
}
