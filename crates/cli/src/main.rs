//! `catalyze` — end-to-end command-line tool: run the CAT benchmarks on the
//! simulated platform, analyze raw events, and emit metric definitions.
//!
//! ```text
//! catalyze events [--gpu]                      list the raw-event inventory
//! catalyze run <domain> [--out FILE] [--trace [FILE]]
//! catalyze analyze <domain> [--in FILE] [--set k=v ...] [--trace [FILE]]
//!                           [--metrics [FILE]]
//! catalyze metrics <domain> [--repeat N] [--json FILE] [--expo FILE]
//! catalyze trace diff <baseline.json> <candidate.json> [--json FILE]
//! catalyze presets <domain> [--json] [--set k=v ...]
//! catalyze check [--format json|sarif] [--presets FILE [--arch spr|zen|gpu]]
//! ```
//!
//! Domains: `cpu-flops`, `branch`, `dcache`, `gpu-flops`, `dtlb`, `dstore`.
//!
//! `--set key=value` overrides a stage threshold (`tau`, `alpha`,
//! `representation_threshold`, `rounding_tol`, `composability_threshold`);
//! unknown keys are a usage error (exit 2). `--tau T` / `--alpha A` are
//! shorthands for the two most common overrides.
//!
//! `--trace` records structured observability (nested timed spans, event
//! funnel, linalg solve counters) and prints a human summary; with a FILE
//! argument the schema-stable JSON trace is written there too. `--metrics`
//! folds the same run into a metrics registry and prints the
//! Prometheus-style exposition (with a FILE, the `metrics.v1` JSON is
//! written there). `catalyze metrics` aggregates `--repeat N` runs into
//! one registry; `catalyze trace diff` compares two observability
//! artifacts and exits 1 when a span regresses beyond
//! `--set diff.max_span_regression` (see `DiffConfig`).
//!
//! `check` validates every shipped analysis input (bases, catalogs, stage
//! configurations) and, with `--presets`, a PAPI-style preset file against
//! the chosen architecture's catalog. It exits 1 when any error-severity
//! diagnostic fires, so it can gate CI.

#![forbid(unsafe_code)]

use catalyze::basis::{self, Basis, CacheRegion};
use catalyze::pipeline::{AnalysisConfig, AnalysisReport, AnalysisRequest};
use catalyze::report;
use catalyze::signature::{self, MetricSignature};
use catalyze_cat::{dcache, dstore, dtlb, Domain, MeasurementSet, RunnerConfig, SimRequest};
use catalyze_events::PresetTable;
use catalyze_obs::{
    diff, render_exposition, render_metrics_json, DiffConfig, MetricsRegistry, NoopObserver,
    Observer, Snapshot, TraceCollector,
};
use catalyze_sim::{mi250x_like, sapphire_rapids_like, zen_like, CpuEventSet};
use std::process::ExitCode;

const DOMAINS: [&str; 6] = ["cpu-flops", "branch", "dcache", "gpu-flops", "dtlb", "dstore"];

fn usage() -> ExitCode {
    eprintln!("usage: catalyze <events|run|analyze|metrics|presets|trace> [args]");
    eprintln!("  catalyze events [--gpu]");
    eprintln!("  catalyze run <domain> [--out FILE] [--trace [FILE]]");
    eprintln!("  catalyze analyze <domain> [--in FILE] [--tau T] [--alpha A]");
    eprintln!("                            [--set key=value ...] [--trace [FILE]]");
    eprintln!("                            [--metrics [FILE]]");
    eprintln!("  catalyze metrics <domain> [--repeat N] [--json FILE] [--expo FILE]");
    eprintln!("                            [--set key=value ...]");
    eprintln!("  catalyze trace diff <baseline.json> <candidate.json> [--json FILE]");
    eprintln!("                            [--set diff.key=value ...]");
    eprintln!("  catalyze presets <domain> [--json] [--set key=value ...]");
    eprintln!("  catalyze papi <domain>");
    eprintln!("  catalyze check [--format human|json|sarif] [--presets FILE [--arch spr|zen|gpu]]");
    eprintln!("domains: {}", DOMAINS.join(", "));
    eprintln!("threshold keys for --set: {}", AnalysisConfig::keys().join(", "));
    eprintln!("diff keys for --set: {}", DiffConfig::keys().join(", "));
    ExitCode::from(2)
}

fn cpu_inventory(args: &[String]) -> CpuEventSet {
    match flag_value(args, "--arch").as_deref() {
        Some("zen") => zen_like(),
        Some("spr") | None => sapphire_rapids_like(),
        Some(other) => {
            eprintln!("unknown --arch {other} (expected spr or zen)");
            std::process::exit(2);
        }
    }
}

fn run_domain(
    domain: &str,
    cfg: &RunnerConfig,
    cpu: &CpuEventSet,
    obs: &dyn Observer,
) -> Option<MeasurementSet> {
    let parsed = Domain::parse(domain)?;
    let request = SimRequest::new().domain(parsed).config(cfg).observer(obs);
    let gpu_events;
    let request = if parsed.is_gpu() {
        gpu_events = mi250x_like(cfg.gpu_devices);
        request.gpu_events(&gpu_events)
    } else {
        request.events(cpu)
    };
    match request.run() {
        Ok(ms) => Some(ms),
        Err(e) => {
            eprintln!("run {domain}: {e}");
            None
        }
    }
}

fn domain_analysis_inputs(
    domain: &str,
    cfg: &RunnerConfig,
) -> Option<(Basis, Vec<MetricSignature>, AnalysisConfig)> {
    match domain {
        "cpu-flops" => Some((
            basis::cpu_flops_basis(),
            signature::cpu_flops_signatures(),
            AnalysisConfig::cpu_flops(),
        )),
        "branch" => {
            Some((basis::branch_basis(), signature::branch_signatures(), AnalysisConfig::branch()))
        }
        "dcache" => {
            let regions: Vec<CacheRegion> = dcache::point_regions(&cfg.core.hierarchy)
                .into_iter()
                .map(|r| match r {
                    dcache::Region::L1 => CacheRegion::L1,
                    dcache::Region::L2 => CacheRegion::L2,
                    dcache::Region::L3 => CacheRegion::L3,
                    dcache::Region::Memory => CacheRegion::Memory,
                })
                .collect();
            Some((
                basis::dcache_basis(&regions),
                signature::dcache_signatures(),
                AnalysisConfig::dcache(),
            ))
        }
        "gpu-flops" => Some((
            basis::gpu_flops_basis(),
            signature::gpu_flops_signatures(),
            AnalysisConfig::gpu_flops(),
        )),
        "dtlb" => Some((
            basis::dtlb_basis(&dtlb::point_hit_regions(&cfg.core.tlb)),
            signature::dtlb_signatures(),
            AnalysisConfig::dtlb(),
        )),
        "dstore" => {
            let regions: Vec<CacheRegion> = dstore::point_regions(&cfg.core.hierarchy)
                .into_iter()
                .map(|r| match r {
                    dstore::Region::L1 => CacheRegion::L1,
                    dstore::Region::L2 => CacheRegion::L2,
                    dstore::Region::L3 => CacheRegion::L3,
                    dstore::Region::Memory => CacheRegion::Memory,
                })
                .collect();
            Some((
                basis::dstore_basis(&regions),
                signature::dstore_signatures(),
                AnalysisConfig::dstore(),
            ))
        }
        _ => None,
    }
}

fn analyze_domain(
    domain: &str,
    ms: &MeasurementSet,
    cfg: &RunnerConfig,
    overrides: &[(String, f64)],
    obs: &dyn Observer,
) -> Option<AnalysisReport> {
    let (basis, signatures, mut acfg) = domain_analysis_inputs(domain, cfg)?;
    for (key, value) in overrides {
        if !acfg.set(key, *value) {
            eprintln!(
                "unknown threshold key {key} (expected one of: {})",
                AnalysisConfig::keys().join(", ")
            );
            std::process::exit(2);
        }
    }
    let request = AnalysisRequest::new()
        .domain(domain)
        .events(&ms.events)
        .runs(&ms.runs)
        .basis(&basis)
        .signatures(&signatures)
        .config(acfg)
        .observer(obs);
    match request.run() {
        Ok(report) => Some(report),
        Err(e) => {
            eprintln!("analysis failed for {domain}: {e}");
            std::process::exit(1);
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

/// Collects `--set key=value` threshold overrides plus the `--tau`/`--alpha`
/// shorthands, in command-line order. Malformed pairs are a usage error.
fn parse_overrides(args: &[String]) -> Vec<(String, f64)> {
    let mut overrides = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let (key, raw) = match args[i].as_str() {
            "--set" => {
                let Some(pair) = args.get(i + 1) else {
                    eprintln!("--set requires a key=value argument");
                    std::process::exit(2);
                };
                let Some((key, raw)) = pair.split_once('=') else {
                    eprintln!("malformed --set {pair} (expected key=value)");
                    std::process::exit(2);
                };
                (key.to_string(), raw.to_string())
            }
            "--tau" | "--alpha" => {
                let key = args[i].trim_start_matches('-').to_string();
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("{} requires a numeric argument", args[i]);
                    std::process::exit(2);
                };
                (key, raw.clone())
            }
            _ => {
                i += 1;
                continue;
            }
        };
        let Ok(value) = raw.parse::<f64>() else {
            eprintln!("non-numeric threshold value {raw} for {key}");
            std::process::exit(2);
        };
        overrides.push((key, value));
        i += 2;
    }
    overrides
}

/// Optional-file flag handling (`--trace`, `--metrics`): `None` when
/// absent, `Some(None)` for the bare flag, `Some(Some(path))` when followed
/// by a file name.
fn optional_file_flag(args: &[String], flag: &str) -> Option<Option<String>> {
    let i = args.iter().position(|a| a == flag)?;
    Some(args.get(i + 1).filter(|v| !v.starts_with('-')).cloned())
}

fn trace_request(args: &[String]) -> Option<Option<String>> {
    optional_file_flag(args, "--trace")
}

/// Folds a finished run's trace into a one-run registry and renders the
/// exposition; writes the `metrics.v1` JSON when a file was requested.
fn emit_metrics(trace: &TraceCollector, file: Option<&str>) -> String {
    let mut reg = MetricsRegistry::new();
    reg.fold(trace);
    if let Some(path) = file {
        std::fs::write(path, render_metrics_json(&reg)).expect("write metrics file");
        eprintln!("wrote metrics {path}");
    }
    render_exposition(&reg)
}

/// Writes the JSON trace when a file was requested and returns the human
/// summary for the caller to print on its preferred stream.
fn emit_trace(trace: &TraceCollector, file: Option<&str>) -> String {
    if let Some(path) = file {
        std::fs::write(path, trace.render_json()).expect("write trace file");
        eprintln!("wrote trace {path}");
    }
    trace.render_human()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    let cfg = RunnerConfig::default_sim();

    match command.as_str() {
        "events" => {
            if args.iter().any(|a| a == "--gpu") {
                let set = mi250x_like(cfg.gpu_devices);
                for (_, def) in set.iter() {
                    println!("{:<56} {}", def.info.name.to_string(), def.info.description);
                }
            } else {
                let set = cpu_inventory(&args);
                for (_, def) in set.iter() {
                    println!(
                        "{:<48} [{}] {}",
                        def.info.name.to_string(),
                        def.info.domain,
                        def.info.description
                    );
                }
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(domain) = args.get(1) else { return usage() };
            let trace_to = trace_request(&args);
            let trace = TraceCollector::new();
            let obs: &dyn Observer = if trace_to.is_some() { &trace } else { &NoopObserver };
            let Some(ms) = run_domain(domain, &cfg, &cpu_inventory(&args), obs) else {
                eprintln!("unknown domain {domain}");
                return usage();
            };
            eprintln!(
                "measured {} events over {} points, {} repetitions",
                ms.num_events(),
                ms.num_points(),
                ms.num_runs()
            );
            let json = serde_json::to_string(&ms).expect("measurement serializes");
            match flag_value(&args, "--out") {
                Some(path) => {
                    std::fs::write(&path, json).expect("write measurement file");
                    eprintln!("wrote {path}");
                }
                None => println!("{json}"),
            }
            if let Some(file) = trace_to {
                // stdout carries the measurement JSON; the summary goes to
                // stderr so pipelines stay clean.
                eprint!("{}", emit_trace(&trace, file.as_deref()));
            }
            ExitCode::SUCCESS
        }
        "analyze" => {
            let Some(domain) = args.get(1) else { return usage() };
            if !DOMAINS.contains(&domain.as_str()) {
                eprintln!("unknown domain {domain}");
                return usage();
            }
            let trace_to = trace_request(&args);
            let metrics_to = optional_file_flag(&args, "--metrics");
            let trace = TraceCollector::new();
            let obs: &dyn Observer =
                if trace_to.is_some() || metrics_to.is_some() { &trace } else { &NoopObserver };
            let ms = match flag_value(&args, "--in") {
                Some(path) => {
                    let data = std::fs::read_to_string(&path).expect("read measurement file");
                    let ms: MeasurementSet =
                        serde_json::from_str(&data).expect("valid measurement JSON");
                    ms.validate().expect("consistent measurement file");
                    ms
                }
                None => run_domain(domain, &cfg, &cpu_inventory(&args), obs)
                    .expect("domain checked above"),
            };
            let overrides = parse_overrides(&args);
            let analysis =
                analyze_domain(domain, &ms, &cfg, &overrides, obs).expect("known domain");
            print!("{}", report::noise_summary(&analysis.noise));
            println!();
            print!("{}", report::selection_table(&analysis));
            println!();
            print!("{}", report::metrics_table(&format!("{domain} metrics"), &analysis.metrics));
            if let Some(file) = trace_to {
                println!();
                print!("{}", emit_trace(&trace, file.as_deref()));
            }
            if let Some(file) = metrics_to {
                println!();
                print!("{}", emit_metrics(&trace, file.as_deref()));
            }
            ExitCode::SUCCESS
        }
        "metrics" => {
            let Some(domain) = args.get(1) else { return usage() };
            if !DOMAINS.contains(&domain.as_str()) {
                eprintln!("unknown domain {domain}");
                return usage();
            }
            let repeat = match flag_value(&args, "--repeat") {
                Some(raw) => match raw.parse::<u32>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--repeat expects a positive integer, got {raw}");
                        return ExitCode::from(2);
                    }
                },
                None => 1,
            };
            let overrides = parse_overrides(&args);
            let cpu = cpu_inventory(&args);
            let mut reg = MetricsRegistry::new();
            for _ in 0..repeat {
                let trace = TraceCollector::new();
                let obs: &dyn Observer = &trace;
                let ms = run_domain(domain, &cfg, &cpu, obs).expect("domain checked above");
                analyze_domain(domain, &ms, &cfg, &overrides, obs).expect("known domain");
                reg.fold(&trace);
            }
            if let Some(path) = flag_value(&args, "--json") {
                std::fs::write(&path, render_metrics_json(&reg)).expect("write metrics file");
                eprintln!("wrote metrics {path}");
            }
            let expo = render_exposition(&reg);
            if let Some(path) = flag_value(&args, "--expo") {
                std::fs::write(&path, &expo).expect("write exposition file");
                eprintln!("wrote exposition {path}");
            }
            print!("{expo}");
            ExitCode::SUCCESS
        }
        "trace" => {
            if args.get(1).map(String::as_str) != Some("diff") {
                return usage();
            }
            let paths: Vec<&String> =
                args.iter().skip(2).take_while(|a| !a.starts_with('-')).collect();
            if paths.len() != 2 {
                return usage();
            }
            let (base_path, cand_path) = (paths[0].as_str(), paths[1].as_str());
            let mut diff_cfg = DiffConfig::default();
            for (key, value) in parse_overrides(&args) {
                if !diff_cfg.set(&key, value) {
                    eprintln!(
                        "unknown diff key {key} (expected one of: {})",
                        DiffConfig::keys().join(", ")
                    );
                    return ExitCode::from(2);
                }
            }
            let load = |path: &str| -> Snapshot {
                let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(2);
                });
                Snapshot::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("cannot load {path}: {e}");
                    std::process::exit(2);
                })
            };
            let baseline = load(base_path);
            let candidate = load(cand_path);
            let report = diff(&baseline, &candidate, diff_cfg);
            if let Some(path) = flag_value(&args, "--json") {
                std::fs::write(&path, report.render_json()).expect("write diff file");
                eprintln!("wrote diff {path}");
            }
            print!("{}", report.render_human());
            if report.regressed() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        "presets" => {
            let Some(domain) = args.get(1) else { return usage() };
            let Some(ms) = run_domain(domain, &cfg, &cpu_inventory(&args), &NoopObserver) else {
                eprintln!("unknown domain {domain}");
                return usage();
            };
            let overrides = parse_overrides(&args);
            let analysis =
                analyze_domain(domain, &ms, &cfg, &overrides, &NoopObserver).expect("known domain");
            let table = PresetTable {
                title: format!("{domain} presets"),
                presets: analysis.composable_metrics().iter().map(|m| m.to_preset(1e-6)).collect(),
            };
            if args.iter().any(|a| a == "--json") {
                println!("{}", serde_json::to_string_pretty(&table).expect("serializes"));
            } else {
                for p in &table.presets {
                    print!("{p}");
                }
            }
            ExitCode::SUCCESS
        }
        "papi" => {
            let Some(domain) = args.get(1) else { return usage() };
            let Some(ms) = run_domain(domain, &cfg, &cpu_inventory(&args), &NoopObserver) else {
                eprintln!("unknown domain {domain}");
                return usage();
            };
            let analysis =
                analyze_domain(domain, &ms, &cfg, &[], &NoopObserver).expect("known domain");
            let table = PresetTable {
                title: format!("{domain} presets (auto-generated by catalyze)"),
                presets: analysis.composable_metrics().iter().map(|m| m.to_preset(1e-6)).collect(),
            };
            let arch = flag_value(&args, "--arch").unwrap_or_else(|| "spr".into());
            print!("{}", catalyze_events::to_papi_format(&format!("{arch}-sim"), &table));
            ExitCode::SUCCESS
        }
        "check" => {
            let format = flag_value(&args, "--format").unwrap_or_else(|| "human".into());
            if format != "human" && format != "json" && format != "sarif" {
                eprintln!("unknown --format {format} (expected human, json, or sarif)");
                return usage();
            }
            let mut report = catalyze_check::check_shipped();
            if let Some(path) = flag_value(&args, "--presets") {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot read {path}: {e}");
                        return ExitCode::from(2);
                    }
                };
                let catalog = match flag_value(&args, "--arch").as_deref() {
                    Some("zen") => zen_like().catalog().clone(),
                    Some("gpu") => mi250x_like(cfg.gpu_devices).catalog().clone(),
                    Some("spr") | None => sapphire_rapids_like().catalog().clone(),
                    Some(other) => {
                        eprintln!("unknown --arch {other} (expected spr, zen, or gpu)");
                        return usage();
                    }
                };
                report.extend(catalyze_check::check_preset_file(&path, &text, &catalog));
            }
            if format == "json" {
                println!("{}", report.render_json());
            } else if format == "sarif" {
                println!("{}", report.render_sarif("catalyze-check"));
            } else {
                print!("{}", report.render_human());
            }
            if report.has_errors() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
