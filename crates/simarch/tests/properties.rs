//! Property tests for the hardware substrate: cache/TLB/predictor
//! invariants and program-execution accounting.

use catalyze_sim::branch::{Predictor, PredictorConfig};
use catalyze_sim::cache::{AccessKind, Cache, CacheConfig};
use catalyze_sim::program::{Block, Item};
use catalyze_sim::tlb::{Tlb, TlbConfig};
use catalyze_sim::{CoreConfig, Cpu, FpKind, Instruction, IntKind, Precision, Program, VecWidth};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig::new(1024, 64, 4)) // 4 sets x 4 ways
}

proptest! {
    #[test]
    fn cache_stats_conserve(addrs in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut c = small_cache();
        for &a in &addrs {
            if !c.access(a, AccessKind::Read) {
                c.fill(a);
            }
        }
        prop_assert_eq!(c.stats.accesses(), addrs.len() as u64);
        prop_assert_eq!(c.stats.hits() + c.stats.misses(), addrs.len() as u64);
        prop_assert!(c.valid_lines() <= 16);
    }

    #[test]
    fn repeated_access_to_one_line_hits(addr in 0u64..1_000_000, repeats in 2usize..50) {
        let mut c = small_cache();
        c.access(addr, AccessKind::Read);
        c.fill(addr);
        for _ in 0..repeats {
            prop_assert!(c.access(addr, AccessKind::Read));
        }
    }

    #[test]
    fn mru_line_survives_one_eviction(set_stride_lines in 1u64..4) {
        // Fill a set, touch one line (making it MRU), add one more line:
        // the MRU line must still hit.
        let mut c = small_cache();
        let stride = 4 * 64; // set count * line size
        let lines: Vec<u64> = (0..4).map(|i| i * stride * set_stride_lines.max(1) / set_stride_lines.max(1) + i * stride).collect();
        for &l in &lines {
            c.access(l, AccessKind::Read);
            c.fill(l);
        }
        let mru = lines[1];
        prop_assert!(c.access(mru, AccessKind::Read));
        let newcomer = 99 * stride;
        c.access(newcomer, AccessKind::Read);
        c.fill(newcomer);
        prop_assert!(c.access(mru, AccessKind::Read), "MRU line must not be the victim");
    }

    #[test]
    fn tlb_stats_conserve(pages in proptest::collection::vec(0u64..500, 1..200)) {
        let mut t = Tlb::new(TlbConfig { entries: 16, associativity: 4, page_bytes: 4096 });
        for &p in &pages {
            t.translate(p * 4096);
        }
        prop_assert_eq!(t.stats.hits + t.stats.misses, pages.len() as u64);
    }

    #[test]
    fn predictor_taken_partition(outcomes in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        for (i, &taken) in outcomes.iter().enumerate() {
            p.retire_cond((i % 5) as u32, taken, None);
        }
        let s = p.stats;
        prop_assert_eq!(s.cond_taken + s.cond_not_taken, s.cond_retired);
        prop_assert_eq!(s.cond_retired, outcomes.len() as u64);
        prop_assert!(s.mispredicted <= s.cond_retired);
        prop_assert!(s.mispredicted_taken <= s.mispredicted);
        prop_assert!(s.correctly_predicted() <= s.cond_retired);
    }

    #[test]
    fn program_length_matches_visit_count(
        block_sizes in proptest::collection::vec(1usize..20, 1..5),
        trips in proptest::collection::vec(0u64..12, 1..5),
    ) {
        let mut program = Program::new();
        for (n, t) in block_sizes.iter().zip(&trips) {
            let block = Block::new().repeat(Instruction::Int(IntKind::Add), *n);
            program = program.item(Item::Loop {
                body: vec![Item::Block(block)],
                trips: *t,
                overhead: true,
                site: 0,
            });
        }
        let mut count = 0u64;
        program.visit(&mut |_| count += 1);
        prop_assert_eq!(count, program.dynamic_length());
    }

    #[test]
    fn cpu_accounting_is_consistent(
        fp in 0usize..30,
        ints in 0usize..30,
        branches in 0usize..30,
        trips in 1u64..20,
    ) {
        let mut block = Block::new()
            .repeat(Instruction::fp(Precision::Double, VecWidth::V128, FpKind::Mul), fp)
            .repeat(Instruction::Int(IntKind::Cmp), ints);
        for i in 0..branches {
            block = block.push(Instruction::cond_forced(i as u32, i % 2 == 0, false));
        }
        let program = Program::new().bare_loop(block, trips);
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        cpu.run(&program);
        let s = cpu.stats();
        prop_assert_eq!(s.instructions, (fp + ints + branches) as u64 * trips);
        prop_assert_eq!(s.fp_class(Precision::Double, VecWidth::V128, FpKind::Mul), fp as u64 * trips);
        prop_assert_eq!(s.int_ops[2], ints as u64 * trips);
        prop_assert_eq!(s.branch.cond_retired, branches as u64 * trips);
        prop_assert_eq!(s.flops(Precision::Double), fp as u64 * trips * 2, "V128 DP = 2 lanes");
        prop_assert!(s.cycles >= s.uops / 4);
    }

    #[test]
    fn identical_runs_produce_identical_stats(seed in 0u64..1000) {
        let block = Block::new()
            .push(Instruction::Load { addr: seed * 64, size: 8 })
            .push(Instruction::cond_forced(0, seed % 2 == 0, false));
        let program = Program::new().counted_loop(block, 10, 0);
        let run = || {
            let mut cpu = Cpu::new(CoreConfig::default_sim());
            cpu.run(&program);
            let s = cpu.stats();
            (s.instructions, s.cycles, s.memory.loads_hit_l1, s.branch.cond_taken)
        };
        prop_assert_eq!(run(), run());
    }
}
