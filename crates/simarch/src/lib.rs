//! # catalyze-sim
//!
//! The simulated hardware substrate for the CATalyze reproduction of
//! *Automated Data Analysis for Defining Performance Metrics from Raw
//! Hardware Events* (IPDPSW 2024).
//!
//! The paper collects raw-event measurements on Aurora (Intel Sapphire
//! Rapids CPUs) and Frontier (AMD MI250X GPUs). This crate substitutes an
//! instruction-level CPU model and a wavefront-level GPU model that expose
//! the same *measurement interface*: hundreds of raw events with realistic
//! semantics (aggregate umasks, FMA double-counting, ADD-counts-SUB),
//! realistic noise structure (architectural counters exact; cycle/cache
//! events jittery; a tail of unrelated background events), and a PMU with
//! counter-group multiplexing.
//!
//! Components:
//!
//! * [`isa`], [`program`] — the workload representation (typed instructions,
//!   counted loops with synthesized loop-control overhead);
//! * [`cache`], [`hierarchy`], [`tlb`], [`branch`] — the microarchitectural
//!   units whose behavior the data-cache and branching benchmarks probe;
//! * [`cpu`] — the core model tying the units together and producing
//!   [`cpu::ExecStats`];
//! * [`trace`] — memoized kernel record/replay ([`KernelTrace`]);
//! * [`gpu`] — the MI250X-like device model and its event inventory;
//! * [`events_cpu`] — the Sapphire-Rapids-like event inventory;
//! * [`noise`], [`pmu`] — observation-noise models and the measurement
//!   front-end.
//!
//! Everything is deterministic given a seed: reruns reproduce every table
//! and figure bit-for-bit.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod branch;
pub mod cache;
pub mod cpu;
pub mod events_cpu;
pub(crate) mod events_zen;
pub mod gpu;
pub mod hierarchy;
pub mod isa;
pub mod noise;
pub mod pmu;
pub mod program;
pub(crate) mod stream;
pub mod tlb;
pub mod trace;

pub use cpu::{CoreConfig, Cpu, ExecStats};
pub use events_cpu::{sapphire_rapids_like, CpuBase, CpuEventDef, CpuEventSet};
pub use events_zen::zen_like;
pub use gpu::{mi250x_like, GpuConfig, GpuDevice, GpuEventSet, GpuKernel, GpuStats};
pub use hierarchy::{FastPathIneligible, HierarchyConfig, MemLevel};
pub use isa::{FpKind, Instruction, IntKind, Precision, VecWidth};
pub use noise::NoiseModel;
pub use pmu::{CpuPmu, PmuConfig};
pub use program::{Block, Item, Program};
pub use stream::StreamStats;
pub use trace::KernelTrace;
