//! Set-associative cache model with configurable replacement (true LRU,
//! tree pseudo-LRU, or seeded random).

use serde::{Deserialize, Serialize};

/// Victim-selection policy.
///
/// Real L1/L2 caches implement tree pseudo-LRU (cheaper than true LRU and
/// close in behavior); some last-level caches use quasi-random policies.
/// The benchmark sweeps stay crisp under any of these because their working
/// sets sit well inside or well outside each capacity — which the
/// replacement-policy robustness test pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// True least-recently-used.
    #[default]
    Lru,
    /// Binary-tree pseudo-LRU (associativity must be a power of two).
    TreePlru,
    /// Deterministic pseudo-random victim (xorshift on an internal state).
    Random,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Victim-selection policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a config, validating the geometry.
    ///
    /// # Panics
    /// Panics when sizes are not powers of two or do not divide evenly —
    /// cache geometry is static configuration, so this is a programming
    /// error, not a runtime condition.
    pub fn new(size_bytes: u64, line_bytes: u64, associativity: u32) -> Self {
        Self::with_policy(size_bytes, line_bytes, associativity, ReplacementPolicy::Lru)
    }

    /// Creates a config with an explicit replacement policy.
    ///
    /// # Panics
    /// Panics on invalid geometry, or when `TreePlru` is requested with a
    /// non-power-of-two associativity.
    pub fn with_policy(
        size_bytes: u64,
        line_bytes: u64,
        associativity: u32,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(
            size_bytes % (line_bytes * u64::from(associativity)) == 0,
            "size must divide into sets"
        );
        if policy == ReplacementPolicy::TreePlru {
            assert!(associativity.is_power_of_two(), "tree pLRU needs power-of-two ways");
        }
        let cfg = Self { size_bytes, line_bytes, associativity, policy };
        assert!(cfg.num_sets().is_power_of_two(), "set count must be a power of two");
        cfg
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes * u64::from(self.associativity))
    }
}

/// Per-level hit/miss statistics, split by demand reads and writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
// lint: allow(dead_api): stats type returned by the cache model; fields are the catalog's read surface
pub struct CacheStats {
    /// Demand-read hits.
    pub read_hits: u64,
    /// Demand-read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.read_hits + self.read_misses + self.write_hits + self.write_misses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.read_misses + self.write_misses
    }

    /// Total hits.
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }
}

/// Access type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load.
    Read,
    /// Store.
    Write,
}

/// One level of set-associative cache.
///
/// State is struct-of-arrays: parallel `tags`/`lru` vectors indexed by
/// `set * ways + way`. A line is valid iff its LRU stamp is non-zero —
/// the clock pre-increments before every touch or fill, so live lines
/// always carry a stamp ≥ 1, and the sentinel doubles as the victim key
/// (an invalid way is the unconditional LRU minimum). This keeps the hot
/// lookup scanning two dense `u64` rows instead of a padded struct array.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `log2(line_bytes)` — address decomposition runs on every probe, so
    /// the power-of-two geometry is folded to shifts and masks up front.
    line_shift: u32,
    /// `num_sets - 1`.
    set_mask: u64,
    /// `log2(num_sets)`.
    set_shift: u32,
    /// Line tags, `set * ways + way` layout.
    tags: Vec<u64>,
    /// LRU stamps, same layout; 0 means the way is invalid.
    lru: Vec<u64>,
    /// Tree-pLRU state: one bit-tree word per set.
    plru: Vec<u32>,
    /// Xorshift state for the random policy.
    rng_state: u64,
    clock: u64,
    /// Accumulated statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    /// Panics when the line size or set count is not a power of two (the
    /// [`CacheConfig`] constructors already enforce this; the assert guards
    /// configs built as struct literals).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(cfg.num_sets().is_power_of_two(), "set count must be a power of two");
        let n = (cfg.num_sets() * u64::from(cfg.associativity)) as usize;
        Self {
            cfg,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
            set_shift: cfg.num_sets().trailing_zeros(),
            tags: vec![0; n],
            lru: vec![0; n],
            plru: vec![0; cfg.num_sets() as usize],
            rng_state: 0x2545_F491_4F6C_DD1D,
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    #[inline]
    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_shift;
        (set * self.cfg.associativity as usize, tag)
    }

    /// Looks up `addr`; on hit refreshes LRU and returns `true`. Does not
    /// allocate on miss (use [`Cache::fill`]).
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.cfg.associativity as usize;
        let mut hit = false;
        for w in 0..ways {
            if self.lru[base + w] != 0 && self.tags[base + w] == tag {
                self.lru[base + w] = self.clock;
                hit = true;
                let set = base / ways;
                let ways_u32 = self.cfg.associativity;
                touch_plru(&mut self.plru[set], w as u32, ways_u32);
                break;
            }
        }
        match (kind, hit) {
            (AccessKind::Read, true) => self.stats.read_hits += 1,
            (AccessKind::Read, false) => self.stats.read_misses += 1,
            (AccessKind::Write, true) => self.stats.write_hits += 1,
            (AccessKind::Write, false) => self.stats.write_misses += 1,
        }
        hit
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    /// Returns the evicted line's address when a valid line was displaced.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.cfg.associativity as usize;
        let num_sets = self.cfg.num_sets();
        let set_index = (base / ways) as u64;
        let set = base / ways;
        let victim = self.select_victim(base);
        let evicted = if self.lru[victim] != 0 {
            Some((self.tags[victim] * num_sets + set_index) * self.cfg.line_bytes)
        } else {
            None
        };
        self.tags[victim] = tag;
        self.lru[victim] = self.clock;
        touch_plru(&mut self.plru[set], (victim - base) as u32, self.cfg.associativity);
        evicted
    }

    /// Picks the way to displace in the set starting at `base` (prefer an
    /// invalid way; otherwise evict per the configured policy). The stamp
    /// argmin scan is shared by every policy: an invalid way's zero stamp
    /// is the unconditional minimum and first-wins tiebreaking matches the
    /// first-free-way preference, so [`Cache::policy_victim`] only runs
    /// when the set is full (`best_lru != 0`). Shared between
    /// [`Cache::fill`] and [`Cache::fill_fast`] so both engines draw from
    /// the same xorshift sequence.
    #[inline]
    fn select_victim(&mut self, base: usize) -> usize {
        let ways = self.cfg.associativity as usize;
        let mut victim = base;
        let mut best_lru = u64::MAX;
        // lint: allow(reachable_panic): base is a set index times associativity, in range by construction
        for (i, &stamp) in self.lru[base..base + ways].iter().enumerate() {
            if stamp < best_lru {
                best_lru = stamp;
                victim = base + i;
            }
        }
        if best_lru != 0 && self.cfg.policy != ReplacementPolicy::Lru {
            victim = self.policy_victim(base);
        }
        victim
    }

    /// Victim choice in a *full* set for the non-LRU policies. Out of line
    /// on purpose: inlining the pLRU tree walk and the xorshift draw into
    /// the fill hot loops costs the dominant LRU configuration ~40% on the
    /// dcache replay even when the policy branch is never taken.
    #[inline(never)]
    fn policy_victim(&mut self, base: usize) -> usize {
        let ways = self.cfg.associativity as usize;
        let w = match self.cfg.policy {
            // Unreachable from `select_victim`; kept total so this stays a
            // plain function of the policy (the argmin is the LRU victim).
            ReplacementPolicy::Lru => {
                // lint: allow(reachable_panic): base is a set index times associativity, in range by construction
                let lru = &self.lru[base..base + ways];
                (0..ways).min_by_key(|&i| lru[i]).unwrap_or(0)
            }
            ReplacementPolicy::TreePlru => {
                // lint: allow(reachable_panic): base/ways is the set index, in range by construction
                plru_victim(self.plru[base / ways], self.cfg.associativity) as usize
            }
            ReplacementPolicy::Random => {
                // xorshift64*
                self.rng_state ^= self.rng_state >> 12;
                self.rng_state ^= self.rng_state << 25;
                self.rng_state ^= self.rng_state >> 27;
                (self.rng_state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) as usize % ways
            }
        };
        base + w
    }

    /// Fast-path lookup for the stream replay engine: the exact hit/stamp
    /// behavior of [`Cache::access`] minus statistics (tallied in bulk by
    /// the caller). The pLRU word is maintained only under
    /// [`ReplacementPolicy::TreePlru`] — the one policy that consults it —
    /// so LRU/Random probes skip the tree walk without changing any
    /// observable state.
    #[inline]
    pub(crate) fn probe_fast(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.cfg.associativity as usize;
        for w in 0..ways {
            if self.lru[base + w] != 0 && self.tags[base + w] == tag {
                self.lru[base + w] = self.clock;
                if self.cfg.policy == ReplacementPolicy::TreePlru {
                    touch_plru_outlined(
                        &mut self.plru[base / ways],
                        w as u32,
                        self.cfg.associativity,
                    );
                }
                return true;
            }
        }
        false
    }

    /// Fast-path install: the exact victim choice and stamping of
    /// [`Cache::fill`] under every policy, minus the evicted address
    /// reconstruction; the pLRU touch runs only when the policy reads it.
    #[inline]
    pub(crate) fn fill_fast(&mut self, addr: u64) {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.cfg.associativity as usize;
        let mut victim = base;
        let mut best_lru = u64::MAX;
        for (i, &stamp) in self.lru[base..base + ways].iter().enumerate() {
            if stamp < best_lru {
                best_lru = stamp;
                victim = base + i;
            }
        }
        if best_lru != 0 && self.cfg.policy != ReplacementPolicy::Lru {
            victim = self.policy_victim(base);
        }
        self.tags[victim] = tag;
        self.lru[victim] = self.clock;
        if self.cfg.policy == ReplacementPolicy::TreePlru {
            touch_plru_outlined(
                &mut self.plru[base / ways],
                (victim - base) as u32,
                self.cfg.associativity,
            );
        }
    }

    /// Exact state transition of [`Cache::access`] with no statistics at
    /// all — the reference prefetcher's probe, which must not perturb
    /// demand hit/miss counters.
    #[inline]
    pub(crate) fn probe_silent(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let (base, tag) = self.set_range(addr);
        let ways = self.cfg.associativity as usize;
        for w in 0..ways {
            if self.lru[base + w] != 0 && self.tags[base + w] == tag {
                self.lru[base + w] = self.clock;
                touch_plru(&mut self.plru[base / ways], w as u32, self.cfg.associativity);
                return true;
            }
        }
        false
    }

    /// Appends this cache's behavioral state — everything a future access
    /// stream can observe, and nothing it cannot. The form depends on the
    /// policy because each policy observes different parts of the state:
    ///
    /// * **LRU** — per set, the number of valid ways followed by their tags
    ///   in LRU-to-MRU stamp order. Absolute stamp values and way
    ///   *positions* are unobservable (hits scan all ways; the victim is a
    ///   stamp argmin), so recency order is the whole story.
    /// * **TreePlru** — the per-set pLRU bit-tree word, then per way a
    ///   `(valid, tag)` pair in way order. Positions *are* observable
    ///   (free-way search is by position; `plru_victim` returns a way
    ///   index), while stamps matter only through validity.
    /// * **Random** — the xorshift state once, then per-way `(valid, tag)`
    ///   pairs in way order, same observability argument as TreePlru with
    ///   the RNG standing in for the tree word.
    pub(crate) fn canonical_into(&self, out: &mut Vec<u64>) {
        let ways = self.cfg.associativity as usize;
        match self.cfg.policy {
            ReplacementPolicy::Lru => {
                let mut set_buf: Vec<(u64, u64)> = Vec::with_capacity(ways);
                for set in 0..self.cfg.num_sets() as usize {
                    let base = set * ways;
                    set_buf.clear();
                    for w in 0..ways {
                        if self.lru[base + w] != 0 {
                            set_buf.push((self.lru[base + w], self.tags[base + w]));
                        }
                    }
                    set_buf.sort_unstable();
                    out.push(set_buf.len() as u64);
                    out.extend(set_buf.iter().map(|&(_, tag)| tag));
                }
            }
            ReplacementPolicy::TreePlru | ReplacementPolicy::Random => {
                if self.cfg.policy == ReplacementPolicy::Random {
                    out.push(self.rng_state);
                }
                for set in 0..self.cfg.num_sets() as usize {
                    let base = set * ways;
                    if self.cfg.policy == ReplacementPolicy::TreePlru {
                        out.push(u64::from(self.plru[set]));
                    }
                    for w in 0..ways {
                        let valid = self.lru[base + w] != 0;
                        out.push(u64::from(valid));
                        out.push(if valid { self.tags[base + w] } else { 0 });
                    }
                }
            }
        }
    }

    /// Advances the stamp clock as if `n` touches happened — used when
    /// replay collapses steady-state passes without driving them.
    pub(crate) fn advance_clock(&mut self, n: u64) {
        self.clock += n;
    }

    /// Invalidates everything and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(0);
        self.lru.fill(0);
        self.plru.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }

    /// Clears statistics only (keeps cache contents — used after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> usize {
        self.lru.iter().filter(|&&s| s != 0).count()
    }
}

/// Marks way `w` most-recently-used in a tree-pLRU bit word: walk from the
/// root, flipping each internal node to point *away* from the taken path.
/// Out-of-line [`touch_plru`] for the fast-path hot loops: keeps the tree
/// walk's code out of `probe_fast`/`fill_fast`, whose scan loops would
/// otherwise pay a codegen penalty on every policy for maintenance only
/// tree-pLRU needs (measured ~40% on the LRU dcache replay when inlined).
#[inline(never)]
fn touch_plru_outlined(state: &mut u32, w: u32, ways: u32) {
    touch_plru(state, w, ways);
}

fn touch_plru(state: &mut u32, w: u32, ways: u32) {
    if ways < 2 {
        return;
    }
    let levels = ways.trailing_zeros();
    let mut node = 0u32; // root at index 0, children of n at 2n+1 / 2n+2
    for level in (0..levels).rev() {
        let bit = (w >> level) & 1;
        if bit == 0 {
            *state |= 1 << node; // point to the right subtree
        } else {
            *state &= !(1 << node); // point to the left subtree
        }
        node = 2 * node + 1 + bit;
    }
}

/// Follows the tree-pLRU pointers to the pseudo-least-recently-used way.
fn plru_victim(state: u32, ways: u32) -> u32 {
    if ways < 2 {
        return 0;
    }
    let levels = ways.trailing_zeros();
    let mut node = 0u32;
    let mut w = 0u32;
    for _ in 0..levels {
        let bit = (state >> node) & 1;
        w = (w << 1) | bit;
        node = 2 * node + 1 + bit;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig::new(512, 64, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 64, 8);
        assert_eq!(c.num_sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::new(512, 48, 2);
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x1000, AccessKind::Read));
        c.fill(0x1000);
        assert!(c.access(0x1000, AccessKind::Read));
        assert!(c.access(0x1030, AccessKind::Read), "same 64B line");
        assert_eq!(c.stats.read_misses, 1);
        assert_eq!(c.stats.read_hits, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64 B = 256 B).
        let (a, b, d) = (0x0000u64, 0x0100, 0x0200);
        c.fill(a);
        c.fill(b);
        // Touch `a` so `b` becomes LRU.
        assert!(c.access(a, AccessKind::Read));
        let evicted = c.fill(d);
        assert_eq!(evicted, Some(b), "LRU way must be displaced");
        assert!(c.access(a, AccessKind::Read));
        assert!(!c.access(b, AccessKind::Read));
        assert!(c.access(d, AccessKind::Read));
    }

    #[test]
    fn evicted_address_reconstruction() {
        let mut c = small();
        let addr = 0x1234u64;
        c.fill(addr);
        // Force eviction by filling the same set with 2 more lines.
        let set_stride = 256u64;
        let base = addr & !(64 - 1) & (set_stride - 1); // same set index bits
        let e1 = c.fill(base + set_stride * 100);
        assert_eq!(e1, None); // second way was free
        let e2 = c.fill(base + set_stride * 200);
        assert_eq!(e2, Some(addr & !(64 - 1)), "evicted line address rounds to line start");
    }

    #[test]
    fn working_set_within_capacity_all_hits() {
        let mut c = small();
        let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
        for &a in &lines {
            if !c.access(a, AccessKind::Read) {
                c.fill(a);
            }
        }
        c.reset_stats();
        for _ in 0..10 {
            for &a in &lines {
                assert!(c.access(a, AccessKind::Read));
            }
        }
        assert_eq!(c.stats.read_misses, 0);
        assert_eq!(c.stats.read_hits, 80);
    }

    #[test]
    fn working_set_twice_capacity_thrashes() {
        let mut c = small();
        // 16 lines cycling through a 8-line LRU cache sequentially: always miss.
        let lines: Vec<u64> = (0..16).map(|i| i * 64).collect();
        for _ in 0..4 {
            for &a in &lines {
                if !c.access(a, AccessKind::Read) {
                    c.fill(a);
                }
            }
        }
        // After warmup round, sequential sweep over 2x capacity with LRU
        // evicts every line before reuse: hit rate 0.
        assert_eq!(c.stats.read_hits, 0);
    }

    #[test]
    fn writes_tracked_separately() {
        let mut c = small();
        assert!(!c.access(0, AccessKind::Write));
        c.fill(0);
        assert!(c.access(0, AccessKind::Write));
        assert_eq!(c.stats.write_misses, 1);
        assert_eq!(c.stats.write_hits, 1);
        assert_eq!(c.stats.accesses(), 2);
        assert_eq!(c.stats.hits(), 1);
        assert_eq!(c.stats.misses(), 1);
    }

    #[test]
    fn reset_clears_contents() {
        let mut c = small();
        c.fill(0);
        assert_eq!(c.valid_lines(), 1);
        c.reset();
        assert_eq!(c.valid_lines(), 0);
        assert!(!c.access(0, AccessKind::Read));
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;

    fn cache_with(policy: ReplacementPolicy) -> Cache {
        Cache::new(CacheConfig::with_policy(512, 64, 4, policy)) // 2 sets x 4 ways
    }

    #[test]
    fn plru_touch_and_victim_are_consistent() {
        // After touching ways 0..3 in order, the pseudo-LRU victim must be
        // way 0 (the least recently touched under the tree approximation).
        let mut state = 0u32;
        for w in 0..4 {
            touch_plru(&mut state, w, 4);
        }
        assert_eq!(plru_victim(state, 4), 0);
        // Touch way 0 again: victim moves to the other subtree.
        touch_plru(&mut state, 0, 4);
        let v = plru_victim(state, 4);
        assert!(v == 2 || v == 3, "victim {v} must leave the recently-used pair");
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut state = 0u32;
        for pattern in [[3u32, 1, 2, 0], [0, 0, 1, 3], [2, 2, 2, 1]] {
            for &w in &pattern {
                touch_plru(&mut state, w, 4);
            }
            let last = *pattern.last().unwrap();
            assert_ne!(plru_victim(state, 4), last, "MRU way must survive");
        }
    }

    #[test]
    fn working_set_within_capacity_hits_under_every_policy() {
        for policy in
            [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Random]
        {
            let mut c = cache_with(policy);
            let lines: Vec<u64> = (0..8).map(|i| i * 64).collect(); // exactly capacity
            for _ in 0..4 {
                for &a in &lines {
                    if !c.access(a, AccessKind::Read) {
                        c.fill(a);
                    }
                }
            }
            c.reset_stats();
            for _ in 0..4 {
                for &a in &lines {
                    c.access(a, AccessKind::Read);
                }
            }
            assert_eq!(c.stats.misses(), 0, "{policy:?}: resident set must hit");
        }
    }

    #[test]
    fn oversized_set_thrashes_under_every_policy() {
        for policy in
            [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Random]
        {
            let mut c = cache_with(policy);
            let lines: Vec<u64> = (0..32).map(|i| i * 64).collect(); // 4x capacity
            for _ in 0..4 {
                for &a in &lines {
                    if !c.access(a, AccessKind::Read) {
                        c.fill(a);
                    }
                }
            }
            c.reset_stats();
            for &a in &lines {
                if !c.access(a, AccessKind::Read) {
                    c.fill(a);
                }
            }
            let miss_rate = c.stats.misses() as f64 / 32.0;
            assert!(miss_rate > 0.5, "{policy:?}: miss rate {miss_rate}");
        }
    }

    #[test]
    fn random_policy_is_deterministic() {
        let run = || {
            let mut c = cache_with(ReplacementPolicy::Random);
            for i in 0..100u64 {
                let a = (i * 37 % 64) * 64;
                if !c.access(a, AccessKind::Read) {
                    c.fill(a);
                }
            }
            c.stats
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "power-of-two ways")]
    fn plru_rejects_odd_associativity() {
        CacheConfig::with_policy(576, 64, 3, ReplacementPolicy::TreePlru);
    }
}
