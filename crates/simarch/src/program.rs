//! Structured programs: blocks, loops, and a visitor-style executor input.
//!
//! Benchmarks are expressed as nested loop structures over instruction
//! blocks, mirroring how the CAT microkernels are written (unrolled blocks
//! repeated by counted loops). The executor walks the structure without
//! materializing the full dynamic instruction stream, so programs with
//! billions of dynamic instructions stay cheap to represent.

use crate::isa::{Instruction, IntKind};
use serde::{Deserialize, Serialize};

/// A straight-line sequence of instructions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The instructions, executed in order.
    pub instructions: Vec<Instruction>,
}

impl Block {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a block from instructions.
    pub fn from(instructions: Vec<Instruction>) -> Self {
        Self { instructions }
    }

    /// Appends an instruction, builder style.
    pub fn push(mut self, i: Instruction) -> Self {
        self.instructions.push(i);
        self
    }

    /// Appends `n` copies of an instruction.
    pub fn repeat(mut self, i: Instruction, n: usize) -> Self {
        self.instructions.extend(std::iter::repeat(i).take(n));
        self
    }
}

/// One element of a program: straight-line code or a counted loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// Straight-line code.
    Block(Block),
    /// A counted loop around nested items.
    Loop {
        /// Loop body.
        body: Vec<Item>,
        /// Trip count.
        trips: u64,
        /// When true, the executor synthesizes the loop-control overhead a
        /// compiler would emit for a counted loop: per iteration one integer
        /// increment, one compare, and one backward conditional branch that
        /// is taken on all iterations except the last (and predicted
        /// perfectly after warmup, like real hardware on counted loops).
        overhead: bool,
        /// Predictor site id for the synthesized back-edge branch.
        site: u32,
    },
}

/// A complete program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Top-level items, executed in order.
    pub items: Vec<Item>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a top-level item, builder style.
    pub fn item(mut self, item: Item) -> Self {
        self.items.push(item);
        self
    }

    /// Adds a counted loop with loop-control overhead around a single block.
    pub fn counted_loop(self, block: Block, trips: u64, site: u32) -> Self {
        self.item(Item::Loop { body: vec![Item::Block(block)], trips, overhead: true, site })
    }

    /// Adds a counted loop without synthesized overhead (for workloads that
    /// carry their own explicit branch instructions).
    pub fn bare_loop(self, block: Block, trips: u64) -> Self {
        self.item(Item::Loop { body: vec![Item::Block(block)], trips, overhead: false, site: 0 })
    }

    /// Number of dynamic instructions the program retires, including
    /// synthesized loop overhead.
    pub fn dynamic_length(&self) -> u64 {
        fn item_len(item: &Item) -> u64 {
            match item {
                Item::Block(b) => b.instructions.len() as u64,
                Item::Loop { body, trips, overhead, .. } => {
                    let body_len: u64 = body.iter().map(item_len).sum();
                    let per_iter = body_len + if *overhead { 3 } else { 0 };
                    per_iter * trips
                }
            }
        }
        self.items.iter().map(item_len).sum()
    }

    /// Visits every dynamically executed instruction in order, synthesizing
    /// loop-control instructions where requested.
    ///
    /// The visitor receives each instruction by value; loop overhead is
    /// generated as `Int(Add)`, `Int(Cmp)`, and a conditional back-edge
    /// branch (taken except on the final iteration, never mispredicted —
    /// counted-loop exits are absorbed by real predictors' loop detectors,
    /// and the final-iteration fall-through is a single event lost in the
    /// warmup noise floor).
    pub fn visit<F: FnMut(Instruction)>(&self, visit: &mut F) {
        for item in &self.items {
            visit_item(item, visit);
        }
    }
}

pub(crate) fn visit_item<F: FnMut(Instruction)>(item: &Item, visit: &mut F) {
    match item {
        Item::Block(b) => {
            for &i in &b.instructions {
                visit(i);
            }
        }
        Item::Loop { body, trips, overhead, site } => {
            for iter in 0..*trips {
                for sub in body {
                    visit_item(sub, visit);
                }
                if *overhead {
                    visit(Instruction::Int(IntKind::Add));
                    visit(Instruction::Int(IntKind::Cmp));
                    let taken = iter + 1 != *trips;
                    visit(Instruction::cond_forced(*site, taken, false));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{FpKind, Precision, VecWidth};

    fn fp() -> Instruction {
        Instruction::fp(Precision::Double, VecWidth::Scalar, FpKind::Add)
    }

    #[test]
    fn block_builders() {
        let b = Block::new().push(fp()).repeat(Instruction::Nop, 2);
        assert_eq!(b.instructions.len(), 3);
    }

    #[test]
    fn dynamic_length_counts_overhead() {
        let p = Program::new().counted_loop(Block::new().repeat(fp(), 24), 10, 0);
        // (24 + 3 overhead) * 10
        assert_eq!(p.dynamic_length(), 270);
        let q = Program::new().bare_loop(Block::new().repeat(fp(), 24), 10);
        assert_eq!(q.dynamic_length(), 240);
    }

    #[test]
    fn visit_enumerates_in_order() {
        let p = Program::new().counted_loop(Block::new().repeat(fp(), 2), 3, 7);
        let mut seen = Vec::new();
        p.visit(&mut |i| seen.push(i));
        assert_eq!(seen.len() as u64, p.dynamic_length());
        // Each iteration: 2 fp, int add, int cmp, cond branch.
        assert!(matches!(seen[0], Instruction::Fp { .. }));
        assert!(matches!(seen[2], Instruction::Int(IntKind::Add)));
        assert!(matches!(seen[3], Instruction::Int(IntKind::Cmp)));
        if let Instruction::CondBranch(cb) = seen[4] {
            assert!(cb.taken, "back edge taken on non-final iteration");
            assert_eq!(cb.site, 7);
        } else {
            panic!("expected branch");
        }
        if let Instruction::CondBranch(cb) = seen[14] {
            assert!(!cb.taken, "back edge falls through on final iteration");
        } else {
            panic!("expected branch");
        }
    }

    #[test]
    fn nested_loops() {
        let inner = Item::Loop {
            body: vec![Item::Block(Block::new().push(fp()))],
            trips: 4,
            overhead: true,
            site: 1,
        };
        let p = Program::new().item(Item::Loop {
            body: vec![inner],
            trips: 2,
            overhead: true,
            site: 0,
        });
        // inner iteration: 1 + 3 = 4; inner loop = 16; outer iter = 16 + 3 = 19; x2 = 38.
        assert_eq!(p.dynamic_length(), 38);
        let mut n = 0u64;
        p.visit(&mut |_| n += 1);
        assert_eq!(n, 38);
    }

    #[test]
    fn zero_trip_loop_executes_nothing() {
        let p = Program::new().counted_loop(Block::new().push(fp()), 0, 0);
        assert_eq!(p.dynamic_length(), 0);
        let mut n = 0;
        p.visit(&mut |_| n += 1);
        assert_eq!(n, 0);
    }
}
