//! Data TLB model: a small set-associative translation cache.

use serde::{Deserialize, Serialize};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub associativity: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl TlbConfig {
    /// 64-entry, 4-way, 4 KiB pages — a typical first-level DTLB.
    pub fn default_sim() -> Self {
        Self { entries: 64, associativity: 4, page_bytes: 4096 }
    }

    fn num_sets(&self) -> u64 {
        u64::from(self.entries / self.associativity)
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
// lint: allow(dead_api): stats type returned by the TLB model; fields are the catalog's read surface
pub struct TlbStats {
    /// Translation hits.
    pub hits: u64,
    /// Translation misses (page-walks).
    pub misses: u64,
}

/// A data TLB.
///
/// Like [`crate::cache::Cache`], state is struct-of-arrays: parallel
/// `vpns`/`lru` vectors indexed by `set * ways + way`, with `lru == 0`
/// marking an invalid entry (the clock pre-increments, so live entries
/// always stamp ≥ 1 and the sentinel is the natural eviction minimum).
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    /// `log2(page_bytes)` — folded from the power-of-two geometry so the
    /// per-translation address decomposition is shifts and masks.
    page_shift: u32,
    /// `num_sets - 1`.
    set_mask: u64,
    /// Virtual page numbers, `set * ways + way` layout.
    vpns: Vec<u64>,
    /// LRU stamps, same layout; 0 means the entry is invalid.
    lru: Vec<u64>,
    clock: u64,
    /// Accumulated statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    /// Panics when the geometry does not divide into power-of-two sets.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.associativity > 0 && cfg.entries % cfg.associativity == 0);
        assert!(cfg.num_sets().is_power_of_two());
        assert!(cfg.page_bytes.is_power_of_two());
        Self {
            cfg,
            page_shift: cfg.page_bytes.trailing_zeros(),
            set_mask: cfg.num_sets() - 1,
            vpns: vec![0; cfg.entries as usize],
            lru: vec![0; cfg.entries as usize],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates an address; returns `true` on TLB hit. Misses install the
    /// translation (after the implied page walk).
    pub fn translate(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let vpn = addr >> self.page_shift;
        let set = (vpn & self.set_mask) as usize;
        let ways = self.cfg.associativity as usize;
        let base = set * ways;
        for w in 0..ways {
            if self.lru[base + w] != 0 && self.vpns[base + w] == vpn {
                self.lru[base + w] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Install, evicting the LRU way; an invalid way's zero stamp makes
        // it the unconditional first-wins minimum.
        let mut victim = base;
        let mut best = u64::MAX;
        for w in 0..ways {
            if self.lru[base + w] < best {
                best = self.lru[base + w];
                victim = base + w;
            }
        }
        self.vpns[victim] = vpn;
        self.lru[victim] = self.clock;
        false
    }

    /// Translates a batch of addresses in order, returning the number of
    /// misses added. Equivalent to calling [`Tlb::translate`] per address —
    /// translation state depends only on the address sequence — but keeps
    /// the loop over the dense SoA rows in one place.
    pub fn translate_batch(&mut self, addrs: &[u64]) -> u64 {
        let before = self.stats.misses;
        for &addr in addrs {
            self.translate(addr);
        }
        self.stats.misses - before
    }

    /// Fast-path translation for the stream replay engine: the exact
    /// hit/install/stamp behavior of [`Tlb::translate`] minus statistics
    /// (tallied in bulk by the caller).
    #[inline]
    pub(crate) fn translate_fast(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let vpn = addr >> self.page_shift;
        let set = (vpn & self.set_mask) as usize;
        let ways = self.cfg.associativity as usize;
        let base = set * ways;
        for w in 0..ways {
            if self.lru[base + w] != 0 && self.vpns[base + w] == vpn {
                self.lru[base + w] = self.clock;
                return true;
            }
        }
        let mut victim = base;
        let mut best = u64::MAX;
        for w in 0..ways {
            if self.lru[base + w] < best {
                best = self.lru[base + w];
                victim = base + w;
            }
        }
        self.vpns[victim] = vpn;
        self.lru[victim] = self.clock;
        false
    }

    /// Appends the behavioral state: per set, the valid-entry count then
    /// VPNs in LRU-to-MRU stamp order. The TLB is always true-LRU, so its
    /// canonical form needs no policy branch — contrast with the
    /// policy-dependent forms in `Cache::canonical_into`.
    pub(crate) fn canonical_into(&self, out: &mut Vec<u64>) {
        let ways = self.cfg.associativity as usize;
        let mut set_buf: Vec<(u64, u64)> = Vec::with_capacity(ways);
        for set in 0..self.cfg.num_sets() as usize {
            let base = set * ways;
            set_buf.clear();
            for w in 0..ways {
                if self.lru[base + w] != 0 {
                    set_buf.push((self.lru[base + w], self.vpns[base + w]));
                }
            }
            set_buf.sort_unstable();
            out.push(set_buf.len() as u64);
            out.extend(set_buf.iter().map(|&(_, vpn)| vpn));
        }
    }

    /// Advances the stamp clock as if `n` translations happened — used
    /// when replay collapses steady-state passes without driving them.
    pub(crate) fn advance_clock(&mut self, n: u64) {
        self.clock += n;
    }

    /// Bulk statistics flush from the stream replay engine.
    pub(crate) fn add_stats(&mut self, hits: u64, misses: u64) {
        self.stats.hits += hits;
        self.stats.misses += misses;
    }

    /// Clears statistics, keeping translations (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Invalidates everything.
    pub fn reset(&mut self) {
        self.vpns.fill(0);
        self.lru.fill(0);
        self.clock = 0;
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(TlbConfig::default_sim());
        assert!(!t.translate(0x1000));
        assert!(t.translate(0x1abc), "same page");
        assert!(!t.translate(0x5000), "different page");
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 2);
    }

    #[test]
    fn capacity_thrash() {
        let cfg = TlbConfig { entries: 4, associativity: 2, page_bytes: 4096 };
        let mut t = Tlb::new(cfg);
        // 8 pages cycling through 4 entries sequentially: all misses.
        for _ in 0..3 {
            for p in 0..8u64 {
                t.translate(p * 4096);
            }
        }
        assert_eq!(t.stats.hits, 0);
    }

    #[test]
    fn small_working_set_all_hits_after_warmup() {
        let mut t = Tlb::new(TlbConfig::default_sim());
        for p in 0..16u64 {
            t.translate(p * 4096);
        }
        t.reset_stats();
        for _ in 0..4 {
            for p in 0..16u64 {
                assert!(t.translate(p * 4096));
            }
        }
        assert_eq!(t.stats.misses, 0);
    }

    #[test]
    fn reset_invalidates() {
        let mut t = Tlb::new(TlbConfig::default_sim());
        t.translate(0);
        t.reset();
        assert!(!t.translate(0));
    }
}
