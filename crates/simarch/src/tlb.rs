//! Data TLB model: a small set-associative translation cache.

use serde::{Deserialize, Serialize};

/// TLB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub associativity: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
}

impl TlbConfig {
    /// 64-entry, 4-way, 4 KiB pages — a typical first-level DTLB.
    pub fn default_sim() -> Self {
        Self { entries: 64, associativity: 4, page_bytes: 4096 }
    }

    fn num_sets(&self) -> u64 {
        u64::from(self.entries / self.associativity)
    }
}

/// TLB statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
// lint: allow(dead_api): stats type returned by the TLB model; fields are the catalog's read surface
pub struct TlbStats {
    /// Translation hits.
    pub hits: u64,
    /// Translation misses (page-walks).
    pub misses: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    vpn: u64,
    valid: bool,
    lru: u64,
}

/// A data TLB.
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<Entry>,
    clock: u64,
    /// Accumulated statistics.
    pub stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    /// Panics when the geometry does not divide into power-of-two sets.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.associativity > 0 && cfg.entries % cfg.associativity == 0);
        assert!(cfg.num_sets().is_power_of_two());
        assert!(cfg.page_bytes.is_power_of_two());
        Self {
            cfg,
            entries: vec![Entry::default(); cfg.entries as usize],
            clock: 0,
            stats: TlbStats::default(),
        }
    }

    /// Translates an address; returns `true` on TLB hit. Misses install the
    /// translation (after the implied page walk).
    pub fn translate(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let vpn = addr / self.cfg.page_bytes;
        let set = (vpn % self.cfg.num_sets()) as usize;
        let ways = self.cfg.associativity as usize;
        let base = set * ways;
        for e in &mut self.entries[base..base + ways] {
            if e.valid && e.vpn == vpn {
                e.lru = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        // Install, evicting LRU.
        let victim = self.entries[base..base + ways]
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| if e.valid { e.lru } else { 0 })
            .map(|(i, _)| base + i)
            // lint: allow(panic, reachable_panic): TlbConfig construction rejects zero associativity
            .expect("associativity > 0");
        self.entries[victim] = Entry { vpn, valid: true, lru: self.clock };
        false
    }

    /// Clears statistics, keeping translations (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Invalidates everything.
    pub fn reset(&mut self) {
        for e in &mut self.entries {
            *e = Entry::default();
        }
        self.clock = 0;
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(TlbConfig::default_sim());
        assert!(!t.translate(0x1000));
        assert!(t.translate(0x1abc), "same page");
        assert!(!t.translate(0x5000), "different page");
        assert_eq!(t.stats.hits, 1);
        assert_eq!(t.stats.misses, 2);
    }

    #[test]
    fn capacity_thrash() {
        let cfg = TlbConfig { entries: 4, associativity: 2, page_bytes: 4096 };
        let mut t = Tlb::new(cfg);
        // 8 pages cycling through 4 entries sequentially: all misses.
        for _ in 0..3 {
            for p in 0..8u64 {
                t.translate(p * 4096);
            }
        }
        assert_eq!(t.stats.hits, 0);
    }

    #[test]
    fn small_working_set_all_hits_after_warmup() {
        let mut t = Tlb::new(TlbConfig::default_sim());
        for p in 0..16u64 {
            t.translate(p * 4096);
        }
        t.reset_stats();
        for _ in 0..4 {
            for p in 0..16u64 {
                assert!(t.translate(p * 4096));
            }
        }
        assert_eq!(t.stats.misses, 0);
    }

    #[test]
    fn reset_invalidates() {
        let mut t = Tlb::new(TlbConfig::default_sim());
        t.translate(0);
        t.reset();
        assert!(!t.translate(0));
    }
}
