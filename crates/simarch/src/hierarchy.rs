//! Three-level data-cache hierarchy with a next-line prefetcher.

use crate::cache::{AccessKind, Cache, CacheConfig, CacheStats, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// Where in the hierarchy a demand access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// L1 data cache.
    L1,
    /// Unified L2.
    L2,
    /// Last-level cache.
    L3,
    /// Main memory.
    Memory,
}

/// Why a hierarchy configuration cannot take the stream replay fast path.
///
/// Since the fast engine learned every replacement policy and the
/// prefetcher, the only remaining exclusion is structural: the tree-pLRU
/// bit word is a `u32`, which addresses internal nodes for at most 32
/// ways. Wider pseudo-LRU caches would overflow the tree walk in *both*
/// engines, so the fast path declines them and leaves the reference loop
/// (and its debug-mode shift check) as the arbiter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastPathIneligible {
    /// A level uses [`ReplacementPolicy::TreePlru`] with more than 32
    /// ways — the per-set `u32` bit-tree word cannot index that tree.
    PlruTooWide(MemLevel),
}

/// Hierarchy geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// L1 data-cache geometry.
    pub l1: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L3 geometry.
    pub l3: CacheConfig,
    /// Enable the L1 next-line prefetcher.
    pub prefetch_next_line: bool,
}

impl HierarchyConfig {
    /// The default simulated core: 16 KiB / 8-way L1, 128 KiB / 8-way L2,
    /// 1 MiB / 16-way L3, 64-byte lines everywhere. Deliberately smaller
    /// than physical Sapphire Rapids so pointer-chase sweeps across all
    /// levels stay fast; the analysis only depends on the *relative*
    /// capacities.
    pub fn default_sim() -> Self {
        Self {
            l1: CacheConfig::new(16 * 1024, 64, 8),
            l2: CacheConfig::new(128 * 1024, 64, 8),
            l3: CacheConfig::new(1024 * 1024, 64, 16),
            prefetch_next_line: false,
        }
    }

    /// Checks whether this geometry can take the stream replay fast path,
    /// naming the offending level when it cannot. Every replacement policy
    /// and the next-line prefetcher are supported; see
    /// [`FastPathIneligible`] for the one structural exclusion.
    pub fn fast_path_eligible(&self) -> Result<(), FastPathIneligible> {
        for (cfg, level) in
            [(self.l1, MemLevel::L1), (self.l2, MemLevel::L2), (self.l3, MemLevel::L3)]
        {
            if cfg.policy == ReplacementPolicy::TreePlru && cfg.associativity > 32 {
                return Err(FastPathIneligible::PlruTooWide(level));
            }
        }
        Ok(())
    }
}

/// Per-level demand statistics plus derived counters the PMU exposes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
// lint: allow(dead_api): stats type returned by the hierarchy model
pub struct HierarchyStats {
    /// L1 statistics.
    pub l1: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
    /// L3 statistics.
    pub l3: CacheStats,
    /// Demand loads satisfied from each level (retired-load attribution,
    /// the `MEM_LOAD_RETIRED:*` view).
    pub loads_hit_l1: u64,
    /// Loads that missed L1 (satisfied anywhere below).
    pub loads_miss_l1: u64,
    /// Loads satisfied in L2.
    pub loads_hit_l2: u64,
    /// Loads that missed both L1 and L2.
    pub loads_miss_l2: u64,
    /// Loads satisfied in L3.
    pub loads_hit_l3: u64,
    /// Loads that went to memory.
    pub loads_miss_l3: u64,
    /// Prefetch fills issued.
    pub prefetch_fills: u64,
}

/// Demand accesses from one [`Hierarchy::access_batch`] call, bucketed by
/// the level that satisfied them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
// lint: allow(dead_api): batched-lookup result consumed by the replay engine's penalty model
pub struct LevelCounts {
    /// Accesses satisfied in L1.
    pub l1: u64,
    /// Accesses satisfied in L2.
    pub l2: u64,
    /// Accesses satisfied in L3.
    pub l3: u64,
    /// Accesses that went to main memory.
    pub memory: u64,
}

/// A private three-level hierarchy (one per simulated core).
///
/// Per-level [`CacheStats`] live inside the member caches and are copied
/// into the returned snapshot only when [`Hierarchy::stats`] is called —
/// not on every access, which used to dominate the lookup cost.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    l3: Cache,
    prefetch: bool,
    /// Load-attribution counters; the per-level fields are stale until
    /// [`Hierarchy::stats`] syncs them.
    stats: HierarchyStats,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        Self {
            l1: Cache::new(cfg.l1),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            prefetch: cfg.prefetch_next_line,
            stats: HierarchyStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> HierarchyConfig {
        HierarchyConfig {
            l1: self.l1.config(),
            l2: self.l2.config(),
            l3: self.l3.config(),
            prefetch_next_line: self.prefetch,
        }
    }

    /// Performs a demand access, updating all levels (allocate-on-miss at
    /// every level, non-inclusive victim behavior kept simple: misses fill
    /// every level on the way down, like a mostly-inclusive hierarchy).
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> MemLevel {
        let level = if self.l1.access(addr, kind) {
            MemLevel::L1
        } else if self.l2.access(addr, kind) {
            self.l1.fill(addr);
            MemLevel::L2
        } else if self.l3.access(addr, kind) {
            self.l2.fill(addr);
            self.l1.fill(addr);
            MemLevel::L3
        } else {
            self.l3.fill(addr);
            self.l2.fill(addr);
            self.l1.fill(addr);
            MemLevel::Memory
        };
        if kind == AccessKind::Read {
            match level {
                MemLevel::L1 => self.stats.loads_hit_l1 += 1,
                MemLevel::L2 => {
                    self.stats.loads_miss_l1 += 1;
                    self.stats.loads_hit_l2 += 1;
                }
                MemLevel::L3 => {
                    self.stats.loads_miss_l1 += 1;
                    self.stats.loads_miss_l2 += 1;
                    self.stats.loads_hit_l3 += 1;
                }
                MemLevel::Memory => {
                    self.stats.loads_miss_l1 += 1;
                    self.stats.loads_miss_l2 += 1;
                    self.stats.loads_miss_l3 += 1;
                }
            }
        }
        if self.prefetch && level != MemLevel::L1 {
            // Next-line prefetch into L1 only. The probe is stats-silent so
            // demand counters stay demand-only: the old `access`-then-
            // compensate scheme charged a phantom read hit when the next
            // line was resident and swallowed a real demand miss when the
            // compensation fired against the wrong bucket.
            let next = addr + self.l1.config().line_bytes;
            if !self.l1.probe_silent(next) {
                self.l1.fill(next);
                self.stats.prefetch_fills += 1;
            }
        }
        level
    }

    /// Performs a batch of same-kind demand accesses in order, returning
    /// how many were satisfied at each level. State-equivalent to calling
    /// [`Hierarchy::access`] per address — hierarchy state depends only on
    /// the (address, kind) sequence.
    pub fn access_batch(&mut self, addrs: &[u64], kind: AccessKind) -> LevelCounts {
        let mut counts = LevelCounts::default();
        for &addr in addrs {
            match self.access(addr, kind) {
                MemLevel::L1 => counts.l1 += 1,
                MemLevel::L2 => counts.l2 += 1,
                MemLevel::L3 => counts.l3 += 1,
                MemLevel::Memory => counts.memory += 1,
            }
        }
        counts
    }

    /// Whether this hierarchy can take the stream replay fast path (see
    /// [`HierarchyConfig::fast_path_eligible`] for the reason enum).
    pub(crate) fn fast_path_eligible(&self) -> Result<(), FastPathIneligible> {
        self.config().fast_path_eligible()
    }

    /// Whether the next-line prefetcher is enabled — hoisted by the stream
    /// engine so the per-access loop branches on a local.
    pub(crate) fn prefetch_enabled(&self) -> bool {
        self.prefetch
    }

    /// Fast-path next-line prefetch after a demand access satisfied below
    /// L1: probe L1 for `addr`'s successor line and fill on miss. Returns
    /// `true` when a fill was issued so the stream engine can tally it.
    /// State-identical to the reference prefetch block in
    /// [`Hierarchy::access`] (`probe_silent` + `fill` there), minus the
    /// evicted-address reconstruction and the `prefetch_fills` bump, which
    /// the tally flushes in bulk.
    #[inline]
    pub(crate) fn prefetch_fast(&mut self, addr: u64) -> bool {
        let next = addr + self.l1.config().line_bytes;
        if self.l1.probe_fast(next) {
            false
        } else {
            self.l1.fill_fast(next);
            true
        }
    }

    /// Bulk `prefetch_fills` flush from the stream replay engine.
    pub(crate) fn add_prefetch_fills(&mut self, n: u64) {
        self.stats.prefetch_fills += n;
    }

    /// Fast-path access: the exact lookup/fill/clock sequence of
    /// [`Hierarchy::access`] minus statistics (tallied in bulk by the
    /// stream replay engine via [`Hierarchy::add_bulk_stats`]).
    #[inline]
    pub(crate) fn access_fast(&mut self, addr: u64) -> MemLevel {
        if self.l1.probe_fast(addr) {
            return MemLevel::L1;
        }
        if self.l2.probe_fast(addr) {
            self.l1.fill_fast(addr);
            return MemLevel::L2;
        }
        if self.l3.probe_fast(addr) {
            self.l2.fill_fast(addr);
            self.l1.fill_fast(addr);
            return MemLevel::L3;
        }
        self.l3.fill_fast(addr);
        self.l2.fill_fast(addr);
        self.l1.fill_fast(addr);
        MemLevel::Memory
    }

    /// Appends all three levels' canonical state (see
    /// `Cache::canonical_into`).
    pub(crate) fn canonical_into(&self, out: &mut Vec<u64>) {
        self.l1.canonical_into(out);
        self.l2.canonical_into(out);
        self.l3.canonical_into(out);
    }

    /// Advances each level's stamp clock — used when replay collapses
    /// steady-state passes without driving them.
    pub(crate) fn advance_clocks(&mut self, l1: u64, l2: u64, l3: u64) {
        self.l1.advance_clock(l1);
        self.l2.advance_clock(l2);
        self.l3.advance_clock(l3);
    }

    /// Bulk statistics flush from the stream replay engine: accesses
    /// satisfied per level, split by kind. Produces exactly the per-level
    /// hit/miss splits and retired-load attribution that the per-access
    /// path accumulates incrementally.
    pub(crate) fn add_bulk_stats(&mut self, read_lv: [u64; 4], write_lv: [u64; 4]) {
        let r = read_lv;
        let w = write_lv;
        self.l1.stats.read_hits += r[0];
        self.l1.stats.read_misses += r[1] + r[2] + r[3];
        self.l1.stats.write_hits += w[0];
        self.l1.stats.write_misses += w[1] + w[2] + w[3];
        self.l2.stats.read_hits += r[1];
        self.l2.stats.read_misses += r[2] + r[3];
        self.l2.stats.write_hits += w[1];
        self.l2.stats.write_misses += w[2] + w[3];
        self.l3.stats.read_hits += r[2];
        self.l3.stats.read_misses += r[3];
        self.l3.stats.write_hits += w[2];
        self.l3.stats.write_misses += w[3];
        self.stats.loads_hit_l1 += r[0];
        self.stats.loads_miss_l1 += r[1] + r[2] + r[3];
        self.stats.loads_hit_l2 += r[1];
        self.stats.loads_miss_l2 += r[2] + r[3];
        self.stats.loads_hit_l3 += r[2];
        self.stats.loads_miss_l3 += r[3];
    }

    /// A snapshot of accumulated statistics with the per-level cache stats
    /// synced from the member caches.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats { l1: self.l1.stats, l2: self.l2.stats, l3: self.l3.stats, ..self.stats }
    }

    /// Clears statistics but keeps cache contents (post-warmup).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.stats = HierarchyStats::default();
    }

    /// Invalidates all levels and clears statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
        self.l3.reset();
        self.stats = HierarchyStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1: CacheConfig::new(512, 64, 2),  // 8 lines
            l2: CacheConfig::new(2048, 64, 4), // 32 lines
            l3: CacheConfig::new(8192, 64, 8), // 128 lines
            prefetch_next_line: false,
        })
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_l1() {
        let mut h = tiny();
        assert_eq!(h.access(0x40, AccessKind::Read), MemLevel::Memory);
        assert_eq!(h.access(0x40, AccessKind::Read), MemLevel::L1);
        assert_eq!(h.stats().loads_miss_l3, 1);
        assert_eq!(h.stats().loads_hit_l1, 1);
    }

    #[test]
    fn l1_evicted_line_hits_l2() {
        let mut h = tiny();
        // Fill L1's set 0 beyond its 2 ways: set stride = 4 sets * 64 = 256.
        for i in 0..3u64 {
            h.access(i * 256, AccessKind::Read);
        }
        // First line was LRU-evicted from L1 but still lives in L2.
        assert_eq!(h.access(0, AccessKind::Read), MemLevel::L2);
        assert_eq!(h.stats().loads_hit_l2, 1);
    }

    #[test]
    fn working_set_regions() {
        let mut h = tiny();
        // Working set of 4 lines (fits L1): after warmup, all L1 hits.
        let ws: Vec<u64> = (0..4).map(|i| i * 64).collect();
        for &a in &ws {
            h.access(a, AccessKind::Read);
        }
        h.reset_stats();
        for _ in 0..8 {
            for &a in &ws {
                assert_eq!(h.access(a, AccessKind::Read), MemLevel::L1);
            }
        }
        assert_eq!(h.stats().loads_miss_l1, 0);

        // Working set of 16 lines (fits L2, exceeds L1 capacity 8): a
        // sequential LRU sweep always misses L1 but hits L2 after warmup.
        let mut h = tiny();
        let ws: Vec<u64> = (0..16).map(|i| i * 64).collect();
        for _ in 0..2 {
            for &a in &ws {
                h.access(a, AccessKind::Read);
            }
        }
        h.reset_stats();
        for _ in 0..4 {
            for &a in &ws {
                let lvl = h.access(a, AccessKind::Read);
                assert!(lvl == MemLevel::L2 || lvl == MemLevel::L1, "got {lvl:?}");
            }
        }
        assert!(h.stats().loads_hit_l2 > 0);
        assert_eq!(h.stats().loads_miss_l2, 0);
    }

    #[test]
    fn prefetcher_counts_fills() {
        let mut h = Hierarchy::new(HierarchyConfig { prefetch_next_line: true, ..tiny().config() });
        h.access(0, AccessKind::Read);
        assert!(h.stats().prefetch_fills >= 1);
        // The next line was prefetched into L1.
        assert_eq!(h.access(64, AccessKind::Read), MemLevel::L1);
    }

    #[test]
    fn prefetch_probe_leaves_demand_counters_pure() {
        let mut h = Hierarchy::new(HierarchyConfig { prefetch_next_line: true, ..tiny().config() });
        // Make line 256's line resident (and its successor 320 via prefetch),
        // then demand-miss on 192 so the prefetch probe *hits* on 256. The
        // probe must not record a phantom read hit or eat the demand miss.
        h.access(256, AccessKind::Read);
        h.access(192, AccessKind::Read);
        let s = h.stats();
        assert_eq!(s.l1.read_misses, 2, "two demand misses, nothing else");
        assert_eq!(s.l1.read_hits, 0, "prefetch probes are stats-silent");
        assert_eq!(s.loads_miss_l1, 2);
    }

    #[test]
    fn fast_path_eligibility_names_the_wide_plru_level() {
        let mut cfg = tiny().config();
        assert_eq!(cfg.fast_path_eligible(), Ok(()));
        cfg.prefetch_next_line = true;
        assert_eq!(cfg.fast_path_eligible(), Ok(()), "prefetch is supported");
        cfg.l2 = CacheConfig::with_policy(
            64 * 64 * 64,
            64,
            64,
            crate::cache::ReplacementPolicy::TreePlru,
        );
        assert_eq!(cfg.fast_path_eligible(), Err(FastPathIneligible::PlruTooWide(MemLevel::L2)));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = tiny();
        h.access(0, AccessKind::Read);
        h.reset_stats();
        assert_eq!(h.stats().loads_miss_l3, 0);
        assert_eq!(h.access(0, AccessKind::Read), MemLevel::L1);
    }

    #[test]
    fn full_reset_invalidates() {
        let mut h = tiny();
        h.access(0, AccessKind::Read);
        h.reset();
        assert_eq!(h.access(0, AccessKind::Read), MemLevel::Memory);
    }

    #[test]
    fn writes_do_not_count_as_retired_loads() {
        let mut h = tiny();
        h.access(0, AccessKind::Write);
        assert_eq!(h.stats().loads_miss_l1, 0);
        assert_eq!(h.stats().loads_hit_l1, 0);
        assert_eq!(h.stats().l1.write_misses, 1);
    }
}
