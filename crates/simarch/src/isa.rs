//! Instruction-set model.
//!
//! The simulator is an instruction-level model, not a cycle-accurate RTL
//! model: benchmarks are expressed as streams of typed instructions whose
//! retirement drives the performance-monitoring counters, the cache
//! hierarchy, the TLB, and the branch predictor. This is exactly the level
//! of abstraction the paper's analysis observes — counts of architectural
//! and microarchitectural occurrences.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Floating-point precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Precision {
    /// 16-bit half precision (GPU kernels only on this platform).
    Half,
    /// 32-bit single precision.
    Single,
    /// 64-bit double precision.
    Double,
}

impl Precision {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::Half => 2,
            Precision::Single => 4,
            Precision::Double => 8,
        }
    }

    /// All precisions, in increasing width.
    pub const ALL: [Precision; 3] = [Precision::Half, Precision::Single, Precision::Double];
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Precision::Half => "HP",
            Precision::Single => "SP",
            Precision::Double => "DP",
        })
    }
}

/// SIMD width class of a floating-point instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum VecWidth {
    /// Scalar instruction.
    Scalar,
    /// 128-bit vector.
    V128,
    /// 256-bit vector.
    V256,
    /// 512-bit vector.
    V512,
}

impl VecWidth {
    /// Vector register width in bits (64 for scalar, by convention of one
    /// element).
    pub fn bits(self) -> u32 {
        match self {
            VecWidth::Scalar => 64,
            VecWidth::V128 => 128,
            VecWidth::V256 => 256,
            VecWidth::V512 => 512,
        }
    }

    /// Number of elements ("lanes") the instruction operates on.
    pub fn lanes(self, prec: Precision) -> u64 {
        match self {
            VecWidth::Scalar => 1,
            _ => u64::from(self.bits()) / (prec.bytes() * 8),
        }
    }

    /// All widths, scalar first.
    pub const ALL: [VecWidth; 4] =
        [VecWidth::Scalar, VecWidth::V128, VecWidth::V256, VecWidth::V512];
}

impl fmt::Display for VecWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VecWidth::Scalar => "scalar",
            VecWidth::V128 => "128",
            VecWidth::V256 => "256",
            VecWidth::V512 => "512",
        })
    }
}

/// Kind of floating-point arithmetic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Square root.
    Sqrt,
    /// Fused multiply-add.
    Fma,
}

impl FpKind {
    /// Arithmetic operations performed per element: FMA does two, everything
    /// else one.
    pub fn ops_per_element(self) -> u64 {
        match self {
            FpKind::Fma => 2,
            _ => 1,
        }
    }

    /// True for fused multiply-add.
    pub fn is_fma(self) -> bool {
        matches!(self, FpKind::Fma)
    }
}

/// Integer ALU instruction kinds (the loop-header traffic of real kernels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntKind {
    /// Add/sub/increment class.
    Add,
    /// Multiply class.
    Mul,
    /// Compare/test class.
    Cmp,
    /// Logic class (and/or/xor/shift).
    Logic,
}

/// Conditional-branch description.
///
/// The benchmark generator supplies both the architectural outcome and —
/// optionally — a *forced* prediction outcome. Forced outcomes model data
/// patterns that are empirically known to defeat (or satisfy) real
/// predictors, which is how the CAT branching kernels achieve exact
/// per-iteration misprediction rates; when `forced_mispredict` is `None`
/// the simulated predictor (gshare) decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CondBranch {
    /// Architectural outcome: taken or not taken.
    pub taken: bool,
    /// Static identifier of the branch site (indexes predictor state).
    pub site: u32,
    /// `Some(true)`: this instance mispredicts regardless of the predictor;
    /// `Some(false)`: predicted correctly; `None`: ask the predictor.
    pub forced_mispredict: Option<bool>,
}

/// One instruction of the simulated ISA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// Floating-point arithmetic.
    Fp {
        /// Element precision.
        prec: Precision,
        /// SIMD width.
        width: VecWidth,
        /// Operation kind.
        kind: FpKind,
    },
    /// Integer ALU operation.
    Int(IntKind),
    /// Memory load of `size` bytes at virtual address `addr`.
    Load {
        /// Virtual address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
    },
    /// Memory store of `size` bytes at virtual address `addr`.
    Store {
        /// Virtual address.
        addr: u64,
        /// Access size in bytes.
        size: u32,
    },
    /// Conditional branch.
    CondBranch(CondBranch),
    /// Unconditional direct branch (always taken).
    UncondBranch,
    /// Call (unconditional, pushes return address).
    Call,
    /// Return.
    Ret,
    /// No-op (pipeline filler).
    Nop,
}

impl Instruction {
    /// Convenience constructor for an FP instruction.
    pub fn fp(prec: Precision, width: VecWidth, kind: FpKind) -> Self {
        Instruction::Fp { prec, width, kind }
    }

    /// Convenience constructor for a conditional branch decided by the
    /// simulated predictor.
    pub fn cond(site: u32, taken: bool) -> Self {
        Instruction::CondBranch(CondBranch { taken, site, forced_mispredict: None })
    }

    /// Convenience constructor for a conditional branch with a forced
    /// prediction outcome.
    pub fn cond_forced(site: u32, taken: bool, mispredict: bool) -> Self {
        Instruction::CondBranch(CondBranch { taken, site, forced_mispredict: Some(mispredict) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_match_architecture() {
        assert_eq!(VecWidth::Scalar.lanes(Precision::Double), 1);
        assert_eq!(VecWidth::V128.lanes(Precision::Double), 2);
        assert_eq!(VecWidth::V256.lanes(Precision::Double), 4);
        assert_eq!(VecWidth::V512.lanes(Precision::Double), 8);
        assert_eq!(VecWidth::V128.lanes(Precision::Single), 4);
        assert_eq!(VecWidth::V256.lanes(Precision::Single), 8);
        assert_eq!(VecWidth::V512.lanes(Precision::Single), 16);
        assert_eq!(VecWidth::V512.lanes(Precision::Half), 32);
    }

    #[test]
    fn fma_performs_two_ops() {
        assert_eq!(FpKind::Fma.ops_per_element(), 2);
        assert_eq!(FpKind::Add.ops_per_element(), 1);
        assert!(FpKind::Fma.is_fma());
        assert!(!FpKind::Mul.is_fma());
    }

    #[test]
    fn flops_per_instruction_paper_example() {
        // "each AVX256 FMA instruction performs eight FLOPs" (DP).
        let lanes = VecWidth::V256.lanes(Precision::Double);
        assert_eq!(lanes * FpKind::Fma.ops_per_element(), 8);
        // 512-bit DP FMA: 16 FLOPs.
        assert_eq!(VecWidth::V512.lanes(Precision::Double) * FpKind::Fma.ops_per_element(), 16);
    }

    #[test]
    fn precision_bytes() {
        assert_eq!(Precision::Half.bytes(), 2);
        assert_eq!(Precision::Single.bytes(), 4);
        assert_eq!(Precision::Double.bytes(), 8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Precision::Double.to_string(), "DP");
        assert_eq!(VecWidth::V256.to_string(), "256");
    }

    #[test]
    fn constructors() {
        let i = Instruction::fp(Precision::Single, VecWidth::V128, FpKind::Add);
        assert!(matches!(i, Instruction::Fp { width: VecWidth::V128, .. }));
        let b = Instruction::cond(3, true);
        if let Instruction::CondBranch(cb) = b {
            assert_eq!(cb.site, 3);
            assert!(cb.taken);
            assert_eq!(cb.forced_mispredict, None);
        } else {
            panic!("not a branch");
        }
        let f = Instruction::cond_forced(1, false, true);
        if let Instruction::CondBranch(cb) = f {
            assert_eq!(cb.forced_mispredict, Some(true));
        } else {
            panic!("not a branch");
        }
    }
}
