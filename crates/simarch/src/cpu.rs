//! The simulated CPU core: executes programs and accumulates the
//! microarchitectural statistics that raw events are defined over.

use crate::branch::{BranchStats, Predictor, PredictorConfig};
use crate::cache::AccessKind;
use crate::hierarchy::{Hierarchy, HierarchyConfig, HierarchyStats};
use crate::isa::{FpKind, Instruction, IntKind, Precision, VecWidth};
use crate::program::Program;
use crate::tlb::{Tlb, TlbConfig, TlbStats};
use crate::trace::{KernelTrace, Segment};
use serde::{Deserialize, Serialize};

/// Dense index for `(precision, width, kind)` FP instruction classes.
pub(crate) fn fp_index(prec: Precision, width: VecWidth, kind: FpKind) -> usize {
    let p = match prec {
        Precision::Half => 0,
        Precision::Single => 1,
        Precision::Double => 2,
    };
    let w = match width {
        VecWidth::Scalar => 0,
        VecWidth::V128 => 1,
        VecWidth::V256 => 2,
        VecWidth::V512 => 3,
    };
    let k = match kind {
        FpKind::Add => 0,
        FpKind::Sub => 1,
        FpKind::Mul => 2,
        FpKind::Div => 3,
        FpKind::Sqrt => 4,
        FpKind::Fma => 5,
    };
    (p * 4 + w) * 6 + k
}

/// Everything the PMU can observe after a program executes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Retired FP instructions per `(precision, width, kind)` class.
    fp: Vec<u64>,
    /// Integer ALU instructions per kind (Add, Mul, Cmp, Logic).
    pub int_ops: [u64; 4],
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired no-ops.
    pub nops: u64,
    /// All retired instructions.
    pub instructions: u64,
    /// Issued micro-ops (simple per-class expansion).
    pub uops: u64,
    /// Branch statistics.
    pub branch: BranchStats,
    /// Memory-hierarchy statistics.
    pub memory: HierarchyStats,
    /// TLB statistics.
    pub tlb: TlbStats,
    /// Core cycles from the timing model.
    pub cycles: u64,
}

impl Default for ExecStats {
    fn default() -> Self {
        Self {
            fp: vec![0; 3 * 4 * 6],
            int_ops: [0; 4],
            loads: 0,
            stores: 0,
            nops: 0,
            instructions: 0,
            uops: 0,
            branch: BranchStats::default(),
            memory: HierarchyStats::default(),
            tlb: TlbStats::default(),
            cycles: 0,
        }
    }
}

impl ExecStats {
    /// Retired FP instructions of one exact class.
    pub fn fp_class(&self, prec: Precision, width: VecWidth, kind: FpKind) -> u64 {
        // lint: allow(reachable_panic): fp_index enumerates the fixed class grid
        self.fp[fp_index(prec, width, kind)]
    }

    /// Retired FP instructions matching optional filters, with FMA
    /// instructions weighted by `fma_weight` (real Intel
    /// `FP_ARITH_INST_RETIRED` events count an FMA as **two**; pass 2 to
    /// model that, 1 for plain instruction counting).
    pub fn fp_filtered(
        &self,
        prec: Option<Precision>,
        width: Option<VecWidth>,
        fma_weight: u64,
    ) -> u64 {
        let mut total = 0;
        for p in Precision::ALL {
            if prec.is_some_and(|want| want != p) {
                continue;
            }
            for w in VecWidth::ALL {
                if width.is_some_and(|want| want != w) {
                    continue;
                }
                for k in [FpKind::Add, FpKind::Sub, FpKind::Mul, FpKind::Div, FpKind::Sqrt] {
                    total += self.fp_class(p, w, k);
                }
                total += self.fp_class(p, w, FpKind::Fma) * fma_weight;
            }
        }
        total
    }

    /// True floating-point *operations* (elements x ops-per-element) for a
    /// precision — the ground-truth quantity metrics try to compose.
    pub fn flops(&self, prec: Precision) -> u64 {
        let mut total = 0;
        for w in VecWidth::ALL {
            for k in [FpKind::Add, FpKind::Sub, FpKind::Mul, FpKind::Div, FpKind::Sqrt, FpKind::Fma]
            {
                total += self.fp_class(prec, w, k) * w.lanes(prec) * k.ops_per_element();
            }
        }
        total
    }

    /// Total integer ALU instructions.
    pub fn int_total(&self) -> u64 {
        self.int_ops.iter().sum()
    }

    /// True floating-point operations of the given kinds, summed over all
    /// precisions and widths (the granularity of AMD-style
    /// `RETIRED_SSE_AVX_FLOPS` counters, which count *operations* with no
    /// precision split).
    pub fn fp_ops_by_kind(&self, kinds: &[FpKind]) -> u64 {
        let mut total = 0;
        for p in Precision::ALL {
            for w in VecWidth::ALL {
                for &k in kinds {
                    total += self.fp_class(p, w, k) * w.lanes(p) * k.ops_per_element();
                }
            }
        }
        total
    }
}

/// Latency/width parameters of the timing model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingConfig {
    /// Sustained issue width (instructions per cycle upper bound).
    pub issue_width: u64,
    /// Cycles lost per branch misprediction.
    pub mispredict_penalty: u64,
    /// Extra load-to-use cycles for an L2 hit.
    pub l2_latency: u64,
    /// Extra cycles for an L3 hit.
    pub l3_latency: u64,
    /// Extra cycles for a memory access.
    pub memory_latency: u64,
    /// Extra cycles per TLB miss (page walk).
    pub tlb_walk_latency: u64,
}

impl TimingConfig {
    /// Plausible big-core parameters.
    pub fn default_sim() -> Self {
        Self {
            issue_width: 4,
            mispredict_penalty: 17,
            l2_latency: 12,
            l3_latency: 40,
            memory_latency: 180,
            tlb_walk_latency: 25,
        }
    }
}

/// Full core configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Cache hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Branch predictor geometry.
    pub predictor: PredictorConfig,
    /// Timing parameters.
    pub timing: TimingConfig,
}

impl CoreConfig {
    /// The default simulated core.
    pub fn default_sim() -> Self {
        Self {
            hierarchy: HierarchyConfig::default_sim(),
            tlb: TlbConfig::default_sim(),
            predictor: PredictorConfig::default_sim(),
            timing: TimingConfig::default_sim(),
        }
    }
}

/// One simulated core: caches, TLB, predictor, and retirement counters.
#[derive(Debug, Clone)]
pub struct Cpu {
    cfg: CoreConfig,
    hierarchy: Hierarchy,
    tlb: Tlb,
    predictor: Predictor,
    stats: ExecStats,
    /// Extra cycles accumulated from memory/branch penalties.
    penalty_cycles: u64,
    /// The stream engine's cross-call memo of the last driven pass, which
    /// lets a measure-phase replay collapse against the fixed point a
    /// warmup-phase replay already witnessed.
    stream_memo: crate::stream::StreamMemo,
}

impl Cpu {
    /// Creates a cold core.
    pub fn new(cfg: CoreConfig) -> Self {
        Self {
            cfg,
            hierarchy: Hierarchy::new(cfg.hierarchy),
            tlb: Tlb::new(cfg.tlb),
            predictor: Predictor::new(cfg.predictor),
            stats: ExecStats::default(),
            penalty_cycles: 0,
            stream_memo: crate::stream::StreamMemo::default(),
        }
    }

    /// The core configuration.
    pub fn config(&self) -> CoreConfig {
        self.cfg
    }

    /// Executes a program, accumulating statistics on top of current state.
    pub fn run(&mut self, program: &Program) {
        let mut visitor = |i: Instruction| self.execute(i);
        // Split borrow: `visit` needs `&mut` access to `self` via the
        // closure, so route through a raw method instead.
        program.visit(&mut visitor);
        self.finalize_cycles();
    }

    /// Replays a recorded trace at its recorded trip counts, producing
    /// [`ExecStats`] bit-identical to [`Cpu::run`] on the source program.
    ///
    /// Analytic counts (FP/integer/nop retirement, uops, forced-outcome
    /// branch verdicts) are multiplied by the trip count; only the
    /// stateful units — TLB, cache hierarchy, and (when a branch consults
    /// it) the predictor — are actually re-driven, in the original stream
    /// order, so their statistics and penalties accumulate exactly as
    /// under direct execution.
    pub fn replay(&mut self, trace: &KernelTrace) {
        for seg in &trace.segments {
            self.replay_segment(seg, seg.trips);
        }
        self.finalize_cycles();
    }

    /// Replays a trace with every top-level loop's trip count overridden
    /// to `passes` (straight-line segments are unaffected).
    ///
    /// This is how one recording serves both warmup and measurement when
    /// the two differ only in pass count (the stream of one pass is
    /// identical): record the kernel once, replay it at each pass count.
    pub fn replay_passes(&mut self, trace: &KernelTrace, passes: u64) {
        for seg in &trace.segments {
            let trips = if seg.looped { passes } else { seg.trips };
            self.replay_segment(seg, trips);
        }
        self.finalize_cycles();
    }

    fn replay_segment(&mut self, seg: &Segment, trips: u64) {
        if trips == 0 {
            return;
        }
        let c = &seg.counts;
        for (slot, &n) in self.stats.fp.iter_mut().zip(&c.fp) {
            *slot += n * trips;
        }
        for (slot, &n) in self.stats.int_ops.iter_mut().zip(&c.int_ops) {
            *slot += n * trips;
        }
        self.stats.loads += c.loads * trips;
        self.stats.stores += c.stores * trips;
        self.stats.nops += c.nops * trips;
        self.stats.instructions += c.instructions * trips;
        self.stats.uops += c.uops * trips;
        let bs = &mut self.predictor.stats;
        bs.uncond_retired += c.uncond * trips;
        bs.calls += c.calls * trips;
        bs.rets += c.rets * trips;
        if seg.overhead {
            // Synthesized counted-loop control: add + cmp + back-edge per
            // iteration; the back-edge is taken except on the last trip.
            self.stats.int_ops[0] += trips;
            self.stats.int_ops[2] += trips;
            self.stats.instructions += 3 * trips;
            self.stats.uops += 3 * trips;
        }
        if seg.needs_predictor {
            // At least one branch consults the live predictor: replay every
            // conditional branch in order (global history couples them all),
            // including the synthesized back-edge.
            for iter in 0..trips {
                for cb in &seg.cond {
                    if self.predictor.retire_cond(cb.site, cb.taken, cb.forced_mispredict) {
                        self.penalty_cycles += self.cfg.timing.mispredict_penalty;
                    }
                }
                if seg.overhead {
                    self.predictor.retire_cond(seg.site, iter + 1 != trips, Some(false));
                }
            }
        } else {
            // All outcomes forced: verdicts and tallies are state-independent.
            let bs = &mut self.predictor.stats;
            bs.cond_retired += c.cond_retired * trips;
            bs.cond_taken += c.cond_taken * trips;
            bs.cond_not_taken += c.cond_not_taken * trips;
            bs.mispredicted += c.mispredicted * trips;
            bs.mispredicted_taken += c.mispredicted_taken * trips;
            self.penalty_cycles += c.mispredicted * trips * self.cfg.timing.mispredict_penalty;
            if seg.overhead {
                bs.cond_retired += trips;
                bs.cond_taken += trips - 1;
                bs.cond_not_taken += 1;
            }
        }
        // The stateful residue: drive TLB and hierarchy with the recorded
        // stream, batched per same-kind run, preserving per-unit order.
        // Eligible hierarchies (every policy, prefetch on or off — see
        // `FastPathIneligible` for the one exclusion) take the stream
        // engine's fast path, which hoists per-access bookkeeping and
        // collapses steady-state passes analytically; the rest keep this
        // reference loop.
        let t = self.cfg.timing;
        if self.hierarchy.fast_path_eligible().is_ok() {
            self.penalty_cycles += crate::stream::replay_mem(
                &mut self.tlb,
                &mut self.hierarchy,
                &seg.mem,
                trips,
                &t,
                &mut self.stream_memo,
            );
            return;
        }
        for _ in 0..trips {
            for run in &seg.mem {
                let walks = self.tlb.translate_batch(&run.addrs);
                self.penalty_cycles += walks * t.tlb_walk_latency;
                let levels = self.hierarchy.access_batch(&run.addrs, run.kind);
                if run.kind == AccessKind::Read {
                    self.penalty_cycles += levels.l2 * t.l2_latency
                        + levels.l3 * t.l3_latency
                        + levels.memory * t.memory_latency;
                }
            }
        }
    }

    fn execute(&mut self, i: Instruction) {
        self.stats.instructions += 1;
        match i {
            Instruction::Fp { prec, width, kind } => {
                self.stats.fp[fp_index(prec, width, kind)] += 1;
                self.stats.uops += 1;
            }
            Instruction::Int(kind) => {
                let idx = match kind {
                    IntKind::Add => 0,
                    IntKind::Mul => 1,
                    IntKind::Cmp => 2,
                    IntKind::Logic => 3,
                };
                self.stats.int_ops[idx] += 1;
                self.stats.uops += 1;
            }
            Instruction::Load { addr, .. } => {
                self.stats.loads += 1;
                self.stats.uops += 1;
                if !self.tlb.translate(addr) {
                    self.penalty_cycles += self.cfg.timing.tlb_walk_latency;
                }
                let level = self.hierarchy.access(addr, AccessKind::Read);
                self.penalty_cycles += match level {
                    crate::hierarchy::MemLevel::L1 => 0,
                    crate::hierarchy::MemLevel::L2 => self.cfg.timing.l2_latency,
                    crate::hierarchy::MemLevel::L3 => self.cfg.timing.l3_latency,
                    crate::hierarchy::MemLevel::Memory => self.cfg.timing.memory_latency,
                };
            }
            Instruction::Store { addr, .. } => {
                self.stats.stores += 1;
                self.stats.uops += 2; // store address + store data
                if !self.tlb.translate(addr) {
                    self.penalty_cycles += self.cfg.timing.tlb_walk_latency;
                }
                self.hierarchy.access(addr, AccessKind::Write);
            }
            Instruction::CondBranch(cb) => {
                self.stats.uops += 1;
                let mispredicted =
                    self.predictor.retire_cond(cb.site, cb.taken, cb.forced_mispredict);
                if mispredicted {
                    self.penalty_cycles += self.cfg.timing.mispredict_penalty;
                }
            }
            Instruction::UncondBranch => {
                self.stats.uops += 1;
                self.predictor.retire_uncond();
            }
            Instruction::Call => {
                self.stats.uops += 2;
                self.predictor.retire_call();
            }
            Instruction::Ret => {
                self.stats.uops += 1;
                self.predictor.retire_ret();
            }
            Instruction::Nop => {
                self.stats.nops += 1;
                self.stats.uops += 1;
            }
        }
    }

    fn finalize_cycles(&mut self) {
        let issue = self.stats.uops.div_ceil(self.cfg.timing.issue_width);
        self.stats.cycles = issue + self.penalty_cycles;
    }

    /// A snapshot of the statistics including sub-unit counters.
    pub fn stats(&self) -> ExecStats {
        let mut s = self.stats.clone();
        s.branch = self.predictor.stats;
        s.memory = self.hierarchy.stats();
        s.tlb = self.tlb.stats;
        s
    }

    /// Stream-engine counters (memo hits/misses, collapsed passes) for the
    /// observer layer — separate from [`Cpu::stats`] because they describe
    /// the *engine*, not the simulated hardware, and must never enter a
    /// `MeasurementSet`.
    pub fn stream_stats(&self) -> crate::stream::StreamStats {
        self.stream_memo.stats()
    }

    /// Clears statistics but keeps microarchitectural state (warm caches,
    /// trained predictor) — called between warmup and measurement.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
        self.penalty_cycles = 0;
        self.hierarchy.reset_stats();
        self.tlb.reset_stats();
        self.predictor.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Block;

    fn fp_block(n: usize) -> Block {
        Block::new().repeat(Instruction::fp(Precision::Double, VecWidth::Scalar, FpKind::Add), n)
    }

    #[test]
    fn counts_fp_instructions_exactly() {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let p = Program::new().counted_loop(fp_block(24), 10, 0);
        cpu.run(&p);
        let s = cpu.stats();
        assert_eq!(s.fp_class(Precision::Double, VecWidth::Scalar, FpKind::Add), 240);
        assert_eq!(s.fp_filtered(Some(Precision::Double), Some(VecWidth::Scalar), 2), 240);
        assert_eq!(s.fp_filtered(Some(Precision::Single), None, 2), 0);
        assert_eq!(s.flops(Precision::Double), 240);
    }

    #[test]
    fn fma_weighting() {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let b = Block::new()
            .repeat(Instruction::fp(Precision::Double, VecWidth::V256, FpKind::Fma), 12);
        let p = Program::new().counted_loop(b, 1, 0);
        cpu.run(&p);
        let s = cpu.stats();
        // Intel-style event: 12 FMA instructions counted twice.
        assert_eq!(s.fp_filtered(Some(Precision::Double), Some(VecWidth::V256), 2), 24);
        // Plain instruction count.
        assert_eq!(s.fp_filtered(Some(Precision::Double), Some(VecWidth::V256), 1), 12);
        // FLOPs: 12 instr x 4 lanes x 2 ops = 96 (paper's K256_FMA example).
        assert_eq!(s.flops(Precision::Double), 96);
    }

    #[test]
    fn loop_overhead_produces_int_and_branches() {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let p = Program::new().counted_loop(fp_block(4), 100, 0);
        cpu.run(&p);
        let s = cpu.stats();
        assert_eq!(s.int_total(), 200); // add + cmp per iteration
        assert_eq!(s.branch.cond_retired, 100);
        assert_eq!(s.branch.cond_taken, 99); // final iteration falls through
        assert_eq!(s.branch.mispredicted, 0);
        assert_eq!(s.instructions, 4 * 100 + 3 * 100);
    }

    #[test]
    fn loads_drive_the_hierarchy_and_tlb() {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let mut b = Block::new();
        for i in 0..64u64 {
            b = b.push(Instruction::Load { addr: i * 64, size: 8 });
        }
        let p = Program::new().bare_loop(b, 2);
        cpu.run(&p);
        let s = cpu.stats();
        assert_eq!(s.loads, 128);
        assert_eq!(s.memory.loads_miss_l1, 64, "first pass misses");
        assert_eq!(s.memory.loads_hit_l1, 64, "second pass hits (fits in 16 KiB L1)");
        assert_eq!(s.tlb.misses, 1, "single 4 KiB page");
    }

    #[test]
    fn cycles_increase_with_misses() {
        let cfg = CoreConfig::default_sim();
        let mut hit_cpu = Cpu::new(cfg);
        let mut miss_cpu = Cpu::new(cfg);
        let same_line = Block::new().repeat(Instruction::Load { addr: 0, size: 8 }, 64);
        let mut spread = Block::new();
        for i in 0..64u64 {
            // Distinct pages: every load misses TLB and caches.
            spread = spread.push(Instruction::Load { addr: i * 1024 * 1024, size: 8 });
        }
        hit_cpu.run(&Program::new().bare_loop(same_line, 1));
        miss_cpu.run(&Program::new().bare_loop(spread, 1));
        assert!(miss_cpu.stats().cycles > hit_cpu.stats().cycles * 5);
    }

    #[test]
    fn reset_stats_keeps_warm_state() {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let b = Block::new().push(Instruction::Load { addr: 0, size: 8 });
        cpu.run(&Program::new().bare_loop(b.clone(), 1));
        cpu.reset_stats();
        cpu.run(&Program::new().bare_loop(b, 1));
        let s = cpu.stats();
        assert_eq!(s.memory.loads_hit_l1, 1, "cache stayed warm across reset_stats");
        assert_eq!(s.loads, 1);
    }

    /// Runs `p` directly and via record/replay on two cold cores and
    /// asserts the resulting statistics are bit-identical.
    fn assert_replay_parity(p: &Program) {
        let mut direct = Cpu::new(CoreConfig::default_sim());
        direct.run(p);
        let mut replayed = Cpu::new(CoreConfig::default_sim());
        replayed.replay(&KernelTrace::record(p));
        assert_eq!(direct.stats(), replayed.stats());
    }

    #[test]
    fn replay_matches_run_for_fp_kernels() {
        assert_replay_parity(&Program::new().counted_loop(fp_block(24), 10, 0));
    }

    #[test]
    fn replay_matches_run_for_memory_kernels() {
        let mut b = Block::new();
        for i in 0..300u64 {
            // Stride past L1 capacity so every level and the TLB engage.
            b = b.push(Instruction::Load { addr: (i * 97 % 256) * 4096, size: 8 });
        }
        b = b.push(Instruction::Store { addr: 64, size: 8 });
        b = b.push(Instruction::Load { addr: 128, size: 8 });
        assert_replay_parity(&Program::new().counted_loop(b, 3, 5));
    }

    #[test]
    fn replay_matches_run_for_predictor_branches() {
        let mut b = Block::new();
        for i in 0..32u32 {
            // Live predictor branches with a data-like pattern plus forced
            // ones interleaved: the whole stream must replay in order.
            b = b.push(Instruction::cond(i % 5, i % 3 == 0));
            b = b.push(Instruction::cond_forced(9, i % 2 == 0, i % 7 == 0));
        }
        assert_replay_parity(&Program::new().counted_loop(b, 7, 2));
    }

    #[test]
    fn replay_matches_run_for_nested_loops_and_misc() {
        let inner = crate::program::Item::Loop {
            body: vec![crate::program::Item::Block(
                Block::new()
                    .push(Instruction::Load { addr: 0, size: 8 })
                    .push(Instruction::Call)
                    .push(Instruction::Ret)
                    .push(Instruction::UncondBranch)
                    .push(Instruction::Nop),
            )],
            trips: 4,
            overhead: true,
            site: 1,
        };
        let p = Program::new().item(crate::program::Item::Loop {
            body: vec![inner],
            trips: 6,
            overhead: true,
            site: 0,
        });
        assert_replay_parity(&p);
    }

    #[test]
    fn replay_passes_overrides_loop_trips() {
        let mut b = Block::new();
        for i in 0..16u64 {
            b = b.push(Instruction::Load { addr: i * 4096, size: 8 });
        }
        let trace = KernelTrace::record(&Program::new().counted_loop(b.clone(), 4, 0));
        let mut direct = Cpu::new(CoreConfig::default_sim());
        direct.run(&Program::new().counted_loop(b, 9, 0));
        let mut replayed = Cpu::new(CoreConfig::default_sim());
        replayed.replay_passes(&trace, 9);
        assert_eq!(direct.stats(), replayed.stats());
    }

    #[test]
    fn replay_preserves_warm_state_across_reset_stats() {
        let mut b = Block::new();
        for i in 0..64u64 {
            b = b.push(Instruction::Load { addr: i * 64, size: 8 });
        }
        let warm = Program::new().counted_loop(b.clone(), 2, 0);
        let meas = Program::new().counted_loop(b, 2, 0);
        let mut direct = Cpu::new(CoreConfig::default_sim());
        direct.run(&warm);
        direct.reset_stats();
        direct.run(&meas);
        let trace = KernelTrace::record(&meas);
        let mut replayed = Cpu::new(CoreConfig::default_sim());
        replayed.replay_passes(&trace, 2);
        replayed.reset_stats();
        replayed.replay_passes(&trace, 2);
        assert_eq!(direct.stats(), replayed.stats());
    }

    #[test]
    fn stores_and_misc_instructions() {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let b = Block::new()
            .push(Instruction::Store { addr: 64, size: 8 })
            .push(Instruction::UncondBranch)
            .push(Instruction::Call)
            .push(Instruction::Ret)
            .push(Instruction::Nop)
            .push(Instruction::Int(IntKind::Logic));
        cpu.run(&Program::new().bare_loop(b, 3));
        let s = cpu.stats();
        assert_eq!(s.stores, 3);
        assert_eq!(s.branch.uncond_retired, 3);
        assert_eq!(s.branch.calls, 3);
        assert_eq!(s.branch.rets, 3);
        assert_eq!(s.nops, 3);
        assert_eq!(s.int_ops[3], 3);
        assert_eq!(s.branch.all_branches(), 9);
    }
}
