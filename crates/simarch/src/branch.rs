//! Branch prediction: a gshare predictor with per-site fallback.
//!
//! Conditional branches either consult the predictor or carry a *forced*
//! outcome (see [`crate::isa::CondBranch`]); either way the statistics feed
//! the `BR_*` event family.

use serde::{Deserialize, Serialize};

/// Predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PredictorConfig {
    /// log2 of the pattern-history table size.
    pub table_bits: u32,
    /// Global-history length in bits.
    pub history_bits: u32,
}

impl PredictorConfig {
    /// A 4K-entry gshare with 12 bits of history.
    pub fn default_sim() -> Self {
        Self { table_bits: 12, history_bits: 12 }
    }
}

/// Branch statistics accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
// lint: allow(dead_api): stats type returned by the branch unit; fields are the catalog's read surface
pub struct BranchStats {
    /// Conditional branches retired.
    pub cond_retired: u64,
    /// Conditional branches retired taken.
    pub cond_taken: u64,
    /// Conditional branches retired not taken.
    pub cond_not_taken: u64,
    /// Unconditional direct branches retired (jumps).
    pub uncond_retired: u64,
    /// Calls retired.
    pub calls: u64,
    /// Returns retired.
    pub rets: u64,
    /// Mispredicted conditional branches.
    pub mispredicted: u64,
    /// Mispredicted taken conditional branches.
    pub mispredicted_taken: u64,
}

impl BranchStats {
    /// All retired branches (conditional + unconditional + call + ret).
    pub fn all_branches(&self) -> u64 {
        self.cond_retired + self.uncond_retired + self.calls + self.rets
    }

    /// All retired taken branches (unconditional control flow is always
    /// taken).
    pub fn all_taken(&self) -> u64 {
        self.cond_taken + self.uncond_retired + self.calls + self.rets
    }

    /// Correctly predicted conditional branches.
    pub fn correctly_predicted(&self) -> u64 {
        self.cond_retired - self.mispredicted
    }
}

/// Gshare branch predictor.
#[derive(Debug, Clone)]
pub struct Predictor {
    cfg: PredictorConfig,
    /// 2-bit saturating counters.
    table: Vec<u8>,
    history: u64,
    /// Accumulated statistics.
    pub stats: BranchStats,
}

impl Predictor {
    /// Creates a predictor with all counters weakly not-taken.
    pub fn new(cfg: PredictorConfig) -> Self {
        Self { cfg, table: vec![1; 1 << cfg.table_bits], history: 0, stats: BranchStats::default() }
    }

    fn index(&self, site: u32) -> usize {
        let mask = (1u64 << self.cfg.table_bits) - 1;
        let hist_mask = (1u64 << self.cfg.history_bits) - 1;
        (((u64::from(site).wrapping_mul(0x9E37_79B9)) ^ (self.history & hist_mask)) & mask) as usize
    }

    /// Retires a conditional branch: predicts, updates state, and records
    /// statistics. `forced` overrides the predictor verdict when present.
    /// Returns `true` when the branch mispredicted.
    pub fn retire_cond(&mut self, site: u32, taken: bool, forced: Option<bool>) -> bool {
        let idx = self.index(site);
        let predicted_taken = self.table[idx] >= 2;
        let mispredict = match forced {
            Some(m) => m,
            None => predicted_taken != taken,
        };
        // Update the 2-bit counter toward the actual outcome.
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
        self.stats.cond_retired += 1;
        if taken {
            self.stats.cond_taken += 1;
        } else {
            self.stats.cond_not_taken += 1;
        }
        if mispredict {
            self.stats.mispredicted += 1;
            if taken {
                self.stats.mispredicted_taken += 1;
            }
        }
        mispredict
    }

    /// Retires an unconditional direct branch.
    pub fn retire_uncond(&mut self) {
        self.stats.uncond_retired += 1;
    }

    /// Retires a call.
    pub fn retire_call(&mut self) {
        self.stats.calls += 1;
    }

    /// Retires a return.
    pub fn retire_ret(&mut self) {
        self.stats.rets += 1;
    }

    /// Clears statistics, keeping learned state (post-warmup).
    pub fn reset_stats(&mut self) {
        self.stats = BranchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn learns_always_taken() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        for _ in 0..1000 {
            p.retire_cond(1, true, None);
        }
        p.reset_stats();
        for _ in 0..1000 {
            p.retire_cond(1, true, None);
        }
        assert_eq!(p.stats.mispredicted, 0, "steady taken must be perfectly predicted");
        assert_eq!(p.stats.cond_taken, 1000);
    }

    #[test]
    fn learns_alternating_pattern() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        let mut taken = false;
        for _ in 0..4096 {
            p.retire_cond(1, taken, None);
            taken = !taken;
        }
        p.reset_stats();
        for _ in 0..1000 {
            p.retire_cond(1, taken, None);
            taken = !taken;
        }
        // gshare with history resolves a period-2 pattern exactly.
        assert_eq!(p.stats.mispredicted, 0);
        assert_eq!(p.stats.cond_taken, 500);
    }

    #[test]
    fn random_pattern_mispredicts_about_half() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..4096 {
            p.retire_cond(1, rng.gen_bool(0.5), None);
        }
        p.reset_stats();
        let n = 20_000;
        for _ in 0..n {
            p.retire_cond(1, rng.gen_bool(0.5), None);
        }
        let rate = p.stats.mispredicted as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate} should be near 0.5");
    }

    #[test]
    fn forced_outcomes_are_exact() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        for i in 0..100 {
            p.retire_cond(2, true, Some(i % 2 == 0));
        }
        assert_eq!(p.stats.mispredicted, 50);
        assert_eq!(p.stats.cond_retired, 100);
    }

    #[test]
    fn unconditional_kinds_counted() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        p.retire_uncond();
        p.retire_call();
        p.retire_ret();
        p.retire_cond(0, true, Some(false));
        assert_eq!(p.stats.all_branches(), 4);
        assert_eq!(p.stats.all_taken(), 4);
        assert_eq!(p.stats.correctly_predicted(), 1);
    }

    #[test]
    fn not_taken_bookkeeping() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        p.retire_cond(0, false, Some(false));
        p.retire_cond(0, true, Some(false));
        assert_eq!(p.stats.cond_not_taken, 1);
        assert_eq!(p.stats.cond_taken, 1);
        assert_eq!(p.stats.all_taken(), 1);
    }

    #[test]
    fn mispredicted_taken_subset() {
        let mut p = Predictor::new(PredictorConfig::default_sim());
        p.retire_cond(0, true, Some(true));
        p.retire_cond(0, false, Some(true));
        assert_eq!(p.stats.mispredicted, 2);
        assert_eq!(p.stats.mispredicted_taken, 1);
    }
}
