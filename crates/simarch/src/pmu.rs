//! The performance-monitoring unit: programs counter groups and reads
//! events back, applying per-read observation noise.
//!
//! Real machines have *far fewer physical counters than events* (the paper's
//! motivation), so measuring hundreds of events requires multiplexing the
//! workload across many runs, each programming one group of counters. The
//! simulated PMU models exactly that: events are partitioned into groups of
//! `counters` and each group is conceptually a separate run of the
//! (deterministic) workload, with its own noise stream.

use crate::cpu::ExecStats;
use crate::events_cpu::{CpuBase, CpuEventDef, CpuEventSet};
use crate::gpu::{GpuEventSet, GpuStats};
use crate::noise::event_rng;
use catalyze_events::EventId;
use serde::{Deserialize, Serialize};

/// Which physical counter(s) can host an event — the scheduling constraint
/// real PMUs impose on measurement tools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CounterSlot {
    /// A dedicated fixed counter (`INST_RETIRED`, core cycles, ...): never
    /// consumes a programmable slot, but only one event per fixed id fits
    /// in a group.
    Fixed(u8),
    /// Restricted to the low half of the programmable counters (many
    /// memory-pipeline events on real Intel cores).
    LowHalf,
    /// Any programmable counter.
    AnyProgrammable,
}

/// Derives the scheduling constraint of one CPU event from its semantics,
/// mirroring real hardware: instruction and cycle counts live on fixed
/// counters; load-attribution (PEBS-capable) events are restricted to the
/// low programmable counters; everything else schedules freely.
pub fn slot_for(def: &CpuEventDef) -> CounterSlot {
    match def.base {
        CpuBase::Instructions => CounterSlot::Fixed(0),
        CpuBase::Cycles => CounterSlot::Fixed(1),
        CpuBase::L1Hit
        | CpuBase::L1Miss
        | CpuBase::L2Hit
        | CpuBase::L2Miss
        | CpuBase::L3Hit
        | CpuBase::L3Miss => CounterSlot::LowHalf,
        _ => CounterSlot::AnyProgrammable,
    }
}

/// PMU configuration shared by CPU and GPU measurement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PmuConfig {
    /// Physical programmable counters per group (8 on modern Intel cores).
    pub counters: usize,
    /// Base seed for all observation-noise streams.
    pub seed: u64,
}

impl PmuConfig {
    /// Eight counters, fixed default seed.
    pub fn default_sim() -> Self {
        Self { counters: 8, seed: 0xCA7A_1F2E }
    }

    /// Number of measurement groups (multiplexed runs) needed for `n`
    /// events.
    pub fn groups_for(&self, n: usize) -> usize {
        n.div_ceil(self.counters.max(1))
    }
}

/// CPU-side PMU bound to an event inventory.
#[derive(Debug, Clone)]
pub struct CpuPmu {
    cfg: PmuConfig,
}

impl CpuPmu {
    /// Creates a PMU.
    pub fn new(cfg: PmuConfig) -> Self {
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> PmuConfig {
        self.cfg
    }

    /// Schedules the requested events onto counter groups, honoring the
    /// per-event constraints ([`slot_for`]): greedy first-fit — an event
    /// opens a new group (another multiplexed run of the workload) only
    /// when no compatible counter is free in the current one.
    ///
    /// Returns, for each requested event position, its group index.
    pub fn schedule(&self, set: &CpuEventSet, events: &[EventId]) -> Vec<usize> {
        let programmable = self.cfg.counters.max(1);
        let low_half = programmable.div_ceil(2);
        // Per open group: programmable slots used, low-half slots used,
        // fixed counters occupied (bitmask).
        struct Group {
            used: usize,
            low_used: usize,
            fixed: u8,
        }
        let mut groups: Vec<Group> = Vec::new();
        let mut assignment = Vec::with_capacity(events.len());
        for &id in events {
            let def = set
                .def(id)
                // lint: allow(panic, reachable_panic): scheduling an id outside the event set is a programming error
                .unwrap_or_else(|| panic!("unknown CPU event id {}", id.index()));
            let slot = slot_for(def);
            let fits = |g: &Group| match slot {
                CounterSlot::Fixed(i) => g.fixed & (1 << i) == 0,
                CounterSlot::LowHalf => g.low_used < low_half && g.used < programmable,
                CounterSlot::AnyProgrammable => g.used < programmable,
            };
            let gi = match groups.iter().position(fits) {
                Some(gi) => gi,
                None => {
                    groups.push(Group { used: 0, low_used: 0, fixed: 0 });
                    groups.len() - 1
                }
            };
            let g = &mut groups[gi];
            match slot {
                CounterSlot::Fixed(i) => g.fixed |= 1 << i,
                CounterSlot::LowHalf => {
                    g.low_used += 1;
                    g.used += 1;
                }
                CounterSlot::AnyProgrammable => g.used += 1,
            }
            assignment.push(gi);
        }
        assignment
    }

    /// Reads `events` for a workload whose deterministic execution produced
    /// `stats`. `run` indexes the benchmark repetition; every (event, run,
    /// group) triple gets an independent noise stream.
    ///
    /// Events are read in multiplexed groups of `cfg.counters`; the group
    /// index perturbs the noise stream exactly as re-running the workload
    /// would on real hardware.
    pub fn read_cpu(
        &self,
        set: &CpuEventSet,
        stats: &ExecStats,
        events: &[EventId],
        run: usize,
    ) -> Vec<f64> {
        let groups = self.schedule(set, events);
        self.read_cpu_scheduled(set, stats, events, &groups, run)
    }

    /// [`CpuPmu::read_cpu`] against a precomputed group assignment from
    /// [`CpuPmu::schedule`]. Scheduling is deterministic in `(set, events)`,
    /// so hoisting it out of a repetition/point sweep reads the exact same
    /// values while paying the greedy-scheduling pass once.
    pub fn read_cpu_scheduled(
        &self,
        set: &CpuEventSet,
        stats: &ExecStats,
        events: &[EventId],
        groups: &[usize],
        run: usize,
    ) -> Vec<f64> {
        events
            .iter()
            .zip(groups)
            .map(|(&id, &group)| {
                // lint: allow(panic, reachable_panic): ids were validated when the schedule was built
                let def = set.def(id).expect("validated by schedule");
                let truth = def.base.eval(stats) * def.scale;
                let mut rng = event_rng(self.cfg.seed, id.index(), run * 1_000_003 + group);
                def.noise.apply(truth, &mut rng)
            })
            .collect()
    }

    /// Reads GPU `events` against per-device statistics.
    pub fn read_gpu(
        &self,
        set: &GpuEventSet,
        devices: &[GpuStats],
        events: &[EventId],
        run: usize,
    ) -> Vec<f64> {
        events
            .iter()
            .enumerate()
            .map(|(pos, &id)| {
                let def = set
                    .def(id)
                    // lint: allow(panic, reachable_panic): scheduling an id outside the event set is a programming error
                    .unwrap_or_else(|| panic!("unknown GPU event id {}", id.index()));
                let truth = set.true_count(id, devices).unwrap_or(0.0);
                let group = pos / self.cfg.counters.max(1);
                let mut rng =
                    event_rng(self.cfg.seed ^ 0x6770, id.index(), run * 1_000_003 + group);
                def.noise.apply(truth, &mut rng)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CoreConfig, Cpu};
    use crate::events_cpu::sapphire_rapids_like;
    use crate::gpu::{mi250x_like, GpuConfig, GpuDevice, GpuKernel};
    use crate::isa::{FpKind, Instruction, Precision, VecWidth};
    use crate::program::{Block, Program};

    fn flops_stats() -> ExecStats {
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let b = Block::new()
            .repeat(Instruction::fp(Precision::Double, VecWidth::Scalar, FpKind::Add), 24);
        cpu.run(&Program::new().counted_loop(b, 100, 0));
        cpu.stats()
    }

    #[test]
    fn group_math() {
        let cfg = PmuConfig { counters: 8, seed: 1 };
        assert_eq!(cfg.groups_for(0), 0);
        assert_eq!(cfg.groups_for(8), 1);
        assert_eq!(cfg.groups_for(9), 2);
        assert_eq!(cfg.groups_for(300), 38);
    }

    #[test]
    fn exact_events_read_exactly_and_reproducibly() {
        let set = sapphire_rapids_like();
        let pmu = CpuPmu::new(PmuConfig::default_sim());
        let stats = flops_stats();
        let id = set.id_of("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE").unwrap();
        let a = pmu.read_cpu(&set, &stats, &[id], 0);
        let b = pmu.read_cpu(&set, &stats, &[id], 1);
        assert_eq!(a, vec![2400.0]);
        assert_eq!(a, b, "architectural counter identical across runs");
    }

    #[test]
    fn noisy_events_vary_across_runs_but_not_within() {
        let set = sapphire_rapids_like();
        let pmu = CpuPmu::new(PmuConfig::default_sim());
        let stats = flops_stats();
        let id = set.id_of("CPU_CLK_UNHALTED:THREAD").unwrap();
        let a = pmu.read_cpu(&set, &stats, &[id], 0);
        let b = pmu.read_cpu(&set, &stats, &[id], 1);
        let a2 = pmu.read_cpu(&set, &stats, &[id], 0);
        assert_ne!(a, b, "cycles must jitter across repetitions");
        assert_eq!(a, a2, "same repetition reads identically");
        let truth = set.true_count(id, &stats).unwrap();
        assert!((a[0] - truth).abs() / truth < 0.01);
    }

    #[test]
    fn group_index_perturbs_noise() {
        let set = sapphire_rapids_like();
        let pmu = CpuPmu::new(PmuConfig { counters: 1, seed: 7 });
        let stats = flops_stats();
        // Two programmable noisy events on a one-counter PMU: the second
        // request lands in a different group (= a different multiplexed
        // run), so its noise stream differs.
        let noisy = set.id_of("IDQ:DSB_UOPS").unwrap();
        let filler = set.id_of("IDQ:MITE_UOPS").unwrap();
        let in_group0 = pmu.read_cpu(&set, &stats, &[noisy], 0)[0];
        let in_group1 = pmu.read_cpu(&set, &stats, &[filler, noisy], 0)[1];
        assert_ne!(in_group0, in_group1);
    }

    #[test]
    fn scheduler_honors_constraints() {
        let set = sapphire_rapids_like();
        let pmu = CpuPmu::new(PmuConfig { counters: 4, seed: 7 });
        let inst = set.id_of("INST_RETIRED:ANY").unwrap(); // Fixed(0)
        let cyc = set.id_of("CPU_CLK_UNHALTED:THREAD").unwrap(); // Fixed(1)
        let l1 = set.id_of("MEM_LOAD_RETIRED:L1_HIT").unwrap(); // LowHalf
        let l1m = set.id_of("MEM_LOAD_RETIRED:L1_MISS").unwrap(); // LowHalf
        let l2 = set.id_of("MEM_LOAD_RETIRED:L2_HIT").unwrap(); // LowHalf
        let idq = set.id_of("IDQ:DSB_UOPS").unwrap(); // Any

        // Fixed counters ride along without consuming programmable slots:
        // 4 programmable + 2 fixed fit one group.
        let g = pmu.schedule(&set, &[inst, cyc, idq, idq, idq, idq]);
        assert_eq!(g, vec![0; 6]);

        // Two copies of the same fixed counter conflict.
        let g = pmu.schedule(&set, &[inst, inst]);
        assert_eq!(g, vec![0, 1]);

        // LowHalf events: only 2 of the 4 programmable counters qualify,
        // so a third load-attribution event spills to a new group while a
        // free Any event still fits the first.
        let g = pmu.schedule(&set, &[l1, l1m, l2, idq]);
        assert_eq!(g, vec![0, 0, 1, 0]);
    }

    #[test]
    fn schedule_matches_read_grouping_determinism() {
        let set = sapphire_rapids_like();
        let pmu = CpuPmu::new(PmuConfig::default_sim());
        let stats = flops_stats();
        let ids: Vec<EventId> = (0..set.len()).map(|i| EventId(i as u32)).collect();
        let a = pmu.read_cpu(&set, &stats, &ids, 3);
        let b = pmu.read_cpu(&set, &stats, &ids, 3);
        assert_eq!(a, b);
        // The schedule needs at least enough groups for the programmable
        // events (fixed-counter events ride along for free).
        let groups = pmu.schedule(&set, &ids);
        let programmable = ids
            .iter()
            .filter(|&&id| !matches!(slot_for(set.def(id).unwrap()), CounterSlot::Fixed(_)))
            .count();
        let num_groups = groups.iter().max().unwrap() + 1;
        assert!(
            num_groups >= programmable.div_ceil(pmu.config().counters),
            "{num_groups} groups for {programmable} programmable events"
        );
        assert_eq!(pmu.schedule(&set, &ids), groups, "scheduling is deterministic");
    }

    #[test]
    fn gpu_reads() {
        let set = mi250x_like(2);
        let pmu = CpuPmu::new(PmuConfig::default_sim());
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        dev.launch(&GpuKernel {
            name: "add".into(),
            op: FpKind::Add,
            prec: Precision::Half,
            instructions: 10,
            wavefronts: 10,
        });
        let devices = [dev.stats, GpuStats::default()];
        let id0 = set.id_of("rocm:::SQ_INSTS_VALU_ADD_F16:device=0").unwrap();
        let id1 = set.id_of("rocm:::SQ_INSTS_VALU_ADD_F16:device=1").unwrap();
        let v = pmu.read_gpu(&set, &devices, &[id0, id1], 0);
        assert_eq!(v, vec![100.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "unknown CPU event")]
    fn unknown_event_panics() {
        let set = sapphire_rapids_like();
        let pmu = CpuPmu::new(PmuConfig::default_sim());
        let stats = ExecStats::default();
        pmu.read_cpu(&set, &stats, &[EventId(u32::MAX)], 0);
    }
}
