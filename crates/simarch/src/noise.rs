//! Measurement-noise models.
//!
//! The simulator itself is deterministic; what varies between repetitions of
//! a real-hardware measurement is the *observation*: OS jitter, counter
//! multiplexing error, frequency scaling, unrelated background activity.
//! Each raw event therefore carries a noise model applied at PMU read time,
//! driven by a seeded RNG so that every experiment is reproducible.
//!
//! The models reproduce the structure of the paper's Figure 2: purely
//! architectural counters (instruction counts) read back exactly, giving the
//! zero-variability cluster; cycle- and cache-flavored events carry
//! multiplicative jitter; a tail of "unrelated" events fluctuates
//! independently of the workload.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How a raw event's read-back deviates from the true count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoiseModel {
    /// Architectural counter: reads back exactly.
    None,
    /// Multiplicative jitter: `count * (1 + sigma * g)` with `g ~ N(0,1)`.
    Multiplicative {
        /// Relative standard deviation.
        sigma: f64,
    },
    /// Additive jitter: `count + scale * |g|` (background occurrences that
    /// only ever add counts, e.g. interrupt handling).
    Additive {
        /// Absolute scale of the additive term.
        scale: f64,
    },
    /// The event does not measure the workload at all: reads back
    /// `mean * (1 + spread * g)` regardless of the true count.
    Unrelated {
        /// Mean background level.
        mean: f64,
        /// Relative spread.
        spread: f64,
    },
}

impl NoiseModel {
    /// Applies the model to a true count, clamping at zero (counters never
    /// go negative).
    pub fn apply(&self, true_count: f64, rng: &mut impl Rng) -> f64 {
        let v = match *self {
            NoiseModel::None => true_count,
            NoiseModel::Multiplicative { sigma } => true_count * (1.0 + sigma * gaussian(rng)),
            NoiseModel::Additive { scale } => true_count + scale * gaussian(rng).abs(),
            NoiseModel::Unrelated { mean, spread } => mean * (1.0 + spread * gaussian(rng)),
        };
        v.max(0.0)
    }

    /// True when the model always returns the exact count.
    pub fn is_exact(&self) -> bool {
        matches!(self, NoiseModel::None)
    }
}

/// Standard normal via Box–Muller (rand_distr is deliberately not a
/// dependency).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    // Avoid u == 0 so ln(u) is finite.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let v: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
    (-2.0 * u.ln()).sqrt() * v.cos()
}

/// A deterministic per-(event, run) RNG stream.
///
/// Each `(seed, event_index, run_index)` triple yields an independent,
/// reproducible stream, so re-running one event or one repetition never
/// shifts the noise of the others.
pub fn event_rng(seed: u64, event_index: usize, run_index: usize) -> StdRng {
    let mix = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((event_index as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add((run_index as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
    StdRng::seed_from_u64(mix)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_exact() {
        let mut rng = event_rng(1, 0, 0);
        assert_eq!(NoiseModel::None.apply(123.0, &mut rng), 123.0);
        assert!(NoiseModel::None.is_exact());
        assert!(!NoiseModel::Additive { scale: 1.0 }.is_exact());
    }

    #[test]
    fn multiplicative_stays_close() {
        let m = NoiseModel::Multiplicative { sigma: 1e-3 };
        let mut rng = event_rng(2, 1, 0);
        for _ in 0..100 {
            let v = m.apply(1000.0, &mut rng);
            assert!((v - 1000.0).abs() < 1000.0 * 0.01, "v = {v}");
        }
    }

    #[test]
    fn additive_only_adds() {
        let m = NoiseModel::Additive { scale: 5.0 };
        let mut rng = event_rng(3, 2, 0);
        for _ in 0..100 {
            assert!(m.apply(10.0, &mut rng) >= 10.0);
        }
    }

    #[test]
    fn unrelated_ignores_count() {
        let m = NoiseModel::Unrelated { mean: 50.0, spread: 0.1 };
        let mut rng1 = event_rng(4, 3, 0);
        let mut rng2 = event_rng(4, 3, 0);
        let a = m.apply(0.0, &mut rng1);
        let b = m.apply(1e9, &mut rng2);
        assert_eq!(a, b, "same stream, same value, independent of count");
        assert!(a > 0.0);
    }

    #[test]
    fn never_negative() {
        let m = NoiseModel::Multiplicative { sigma: 10.0 };
        let mut rng = event_rng(5, 0, 0);
        for _ in 0..200 {
            assert!(m.apply(1.0, &mut rng) >= 0.0);
        }
    }

    #[test]
    fn rng_streams_are_independent_and_reproducible() {
        let a1: f64 = event_rng(7, 1, 2).gen();
        let a2: f64 = event_rng(7, 1, 2).gen();
        assert_eq!(a1, a2, "same triple, same stream");
        let b: f64 = event_rng(7, 1, 3).gen();
        let c: f64 = event_rng(7, 2, 2).gen();
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
