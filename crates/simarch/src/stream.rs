//! Fast-path replay of recorded memory streams.
//!
//! [`crate::cpu::Cpu::replay_passes`] spends almost all of its time
//! re-driving the TLB and cache hierarchy with a recorded address stream,
//! one pass per loop trip. This module replays that stream with two exact
//! optimizations:
//!
//! * **Hoisted bookkeeping.** Each access runs the same lookup / victim /
//!   stamp sequence as [`crate::hierarchy::Hierarchy::access`], but the
//!   per-access statistics dispatch, load-level attribution, latency
//!   arithmetic, and pLRU maintenance are replaced by four bulk counters
//!   (accesses satisfied per level, split by kind) flushed once per pass.
//! * **Steady-state pass collapse.** Set-associative LRU state is fully
//!   described, behaviorally, by each set's valid tags in recency order —
//!   absolute stamp values never matter, only their per-set order. When
//!   the canonical state before a pass equals the canonical state before
//!   the previous pass, every remaining pass must repeat that pass's
//!   decisions exactly, so the remaining trips are settled analytically:
//!   stats, penalties, and clock advances are multiplied out and the
//!   stream is never touched again.
//! * **Cross-call memoization.** In-call collapse still needs one driven
//!   pass as its comparison point, so the warmup-then-measure call pair
//!   every runner issues would drive a measured pass anyway. The
//!   [`StreamMemo`] carries the last driven pass (stream copy, canonical
//!   pre-state, tally) across calls: a measure call whose entry state
//!   matches that fixed point collapses all of its trips without touching
//!   the stream once.
//!
//! The fast path is only taken when every hierarchy level uses pure LRU
//! and the prefetcher is disabled ([`Hierarchy::lru_fast_path`]); other
//! configurations keep the reference per-access loop in `cpu.rs`. The
//! parity tests below pin bit-identical statistics, penalties, and future
//! behavior against that reference for fitting, thrashing, and mixed
//! streams.

use crate::cache::AccessKind;
use crate::cpu::TimingConfig;
use crate::hierarchy::{Hierarchy, MemLevel};
use crate::tlb::Tlb;
use crate::trace::MemRun;

/// Minimum accesses per pass before canonicalization is attempted: below
/// this, serializing ~19k state slots per pass costs more than driving
/// the stream. Purely a performance threshold — results are identical
/// either way.
const COLLAPSE_MIN_ACCESSES: u64 = 2048;

/// Everything one pass over the stream did, bucketed by the level that
/// satisfied each access and by access kind. All derived statistics
/// (per-level hit/miss splits, load attribution, latency penalties, and
/// per-unit clock advances) are linear in these buckets, which is what
/// makes collapsed passes exact.
#[derive(Debug, Default, Clone, Copy)]
struct PassTally {
    /// Demand reads satisfied at L1/L2/L3/memory.
    read_lv: [u64; 4],
    /// Writes satisfied at L1/L2/L3/memory.
    write_lv: [u64; 4],
    /// TLB hits.
    tlb_hits: u64,
    /// TLB misses (page walks).
    tlb_misses: u64,
}

/// A cross-call memo of the most recent driven pass: the stream it drove,
/// the canonical unit state it started from, and its tally.
///
/// Steady-state collapse inside one [`replay_mem`] call needs at least one
/// driven pass to compare against, so a warmup call followed by a measure
/// call over the same stream (the runners' universal shape) still drives
/// one measured pass. The memo carries the comparison point *across*
/// calls: when a call's entry state matches the canonical state a previous
/// driven pass started from — meaning that pass was a behavioral fixed
/// point — and the stream is byte-identical, every trip of the new call
/// collapses without touching the stream.
///
/// Soundness does not rest on hashing or identity heuristics: the memo
/// stores a full copy of the stream and the full canonical state, and a
/// hit requires both to compare equal. Any interleaved activity that
/// perturbs unit state changes the canonical form and simply misses.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamMemo {
    /// Per-run kind and length of the memoized stream.
    runs: Vec<(AccessKind, usize)>,
    /// All run addresses, concatenated in stream order.
    addrs: Vec<u64>,
    /// Canonical TLB + hierarchy state before the memoized pass.
    canon: Vec<u64>,
    /// What that pass did.
    tally: PassTally,
}

impl StreamMemo {
    fn is_set(&self) -> bool {
        !self.canon.is_empty()
    }

    fn matches_stream(&self, mem: &[MemRun]) -> bool {
        if self.runs.len() != mem.len()
            || !self
                .runs
                .iter()
                .zip(mem)
                .all(|(&(kind, len), run)| kind == run.kind && len == run.addrs.len())
        {
            return false;
        }
        let mut off = 0usize;
        mem.iter().all(|run| {
            let next = off + run.addrs.len();
            let eq = self.addrs[off..next] == run.addrs[..];
            off = next;
            eq
        })
    }

    fn store(&mut self, mem: &[MemRun], canon: &[u64], tally: PassTally) {
        self.runs.clear();
        self.addrs.clear();
        for run in mem {
            self.runs.push((run.kind, run.addrs.len()));
            self.addrs.extend_from_slice(&run.addrs);
        }
        self.canon.clear();
        self.canon.extend_from_slice(canon);
        self.tally = tally;
    }
}

fn level_index(level: MemLevel) -> usize {
    match level {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Memory => 3,
    }
}

impl PassTally {
    /// Penalty cycles one such pass contributes — identical arithmetic to
    /// the reference loop: read latencies by satisfying level plus page
    /// walks (writes are penalized for walks but not for hierarchy
    /// latency, matching `Cpu::replay_segment`).
    fn penalty(&self, t: &TimingConfig) -> u64 {
        self.read_lv[1] * t.l2_latency
            + self.read_lv[2] * t.l3_latency
            + self.read_lv[3] * t.memory_latency
            + self.tlb_misses * t.tlb_walk_latency
    }

    /// Flushes `times` repetitions of this pass into unit statistics.
    fn flush(&self, tlb: &mut Tlb, hierarchy: &mut Hierarchy, times: u64) {
        let scale = |lv: [u64; 4]| lv.map(|n| n * times);
        tlb.add_stats(self.tlb_hits * times, self.tlb_misses * times);
        hierarchy.add_bulk_stats(scale(self.read_lv), scale(self.write_lv));
    }

    /// Advances unit clocks as if `times` such passes were driven: each
    /// access bumps a level's clock once per probe and once per fill, so
    /// the advance per pass is fully determined by the level buckets.
    fn advance_clocks(&self, tlb: &mut Tlb, hierarchy: &mut Hierarchy, times: u64) {
        let both = |i: usize| self.read_lv[i] + self.write_lv[i];
        let accesses = both(0) + both(1) + both(2) + both(3);
        let l1_misses = both(1) + both(2) + both(3);
        let l2_misses = both(2) + both(3);
        let l3_misses = both(3);
        tlb.advance_clock(accesses * times);
        hierarchy.advance_clocks(
            (accesses + l1_misses) * times,
            (l1_misses + l2_misses) * times,
            (l2_misses + l3_misses) * times,
        );
    }
}

/// Drives one full pass of the stream, mirroring the reference loop's
/// per-unit call sequence exactly (TLB and hierarchy are independent
/// units, so per-address interleaving and per-run batching are
/// state-equivalent).
fn drive_pass(tlb: &mut Tlb, hierarchy: &mut Hierarchy, mem: &[MemRun]) -> PassTally {
    let mut tally = PassTally::default();
    for run in mem {
        let lv = match run.kind {
            AccessKind::Read => &mut tally.read_lv,
            AccessKind::Write => &mut tally.write_lv,
        };
        for &addr in &run.addrs {
            if tlb.translate_fast(addr) {
                tally.tlb_hits += 1;
            } else {
                tally.tlb_misses += 1;
            }
            // lint: allow(reachable_panic): level_index maps the four MemLevel variants to 0..4
            lv[level_index(hierarchy.access_fast(addr))] += 1;
        }
    }
    tally
}

/// Replays `trips` passes of a recorded memory stream against the TLB and
/// hierarchy, returning the penalty cycles accrued. Statistics, penalties,
/// and all future unit behavior are bit-identical to driving the reference
/// loop (`translate_batch` + `access_batch` per run, `trips` times).
///
/// Caller must ensure [`Hierarchy::lru_fast_path`] holds.
pub(crate) fn replay_mem(
    tlb: &mut Tlb,
    hierarchy: &mut Hierarchy,
    mem: &[MemRun],
    trips: u64,
    timing: &TimingConfig,
    memo: &mut StreamMemo,
) -> u64 {
    replay_mem_counted(tlb, hierarchy, mem, trips, timing, memo).0
}

/// [`replay_mem`] plus the number of passes actually driven (the rest
/// were collapsed analytically) — exposed for the collapse tests.
fn replay_mem_counted(
    tlb: &mut Tlb,
    hierarchy: &mut Hierarchy,
    mem: &[MemRun],
    trips: u64,
    timing: &TimingConfig,
    memo: &mut StreamMemo,
) -> (u64, u64) {
    let accesses_per_pass: u64 = mem.iter().map(|r| r.addrs.len() as u64).sum();
    if accesses_per_pass == 0 || trips == 0 {
        return (0, 0);
    }
    let try_collapse = accesses_per_pass >= COLLAPSE_MIN_ACCESSES;
    let mut canon_prev: Vec<u64> = Vec::new();
    let mut canon_cur: Vec<u64> = Vec::new();
    let mut have_prev = false;
    let mut penalty = 0u64;
    let mut last = PassTally::default();
    let mut driven = 0u64;
    let mut pass = 0u64;
    while pass < trips {
        let remaining = trips - pass;
        if try_collapse {
            canon_cur.clear();
            tlb.canonical_into(&mut canon_cur);
            hierarchy.canonical_into(&mut canon_cur);
            // A fixed point witnessed either within this call (the previous
            // driven pass started from this exact state) or by the memo (a
            // driven pass from an earlier call did, over the same stream):
            // every remaining pass must repeat that pass's decisions.
            let (hit, tally) = if have_prev {
                (canon_cur == canon_prev, last)
            } else {
                (memo.is_set() && memo.canon == canon_cur && memo.matches_stream(mem), memo.tally)
            };
            if hit {
                tally.flush(tlb, hierarchy, remaining);
                tally.advance_clocks(tlb, hierarchy, remaining);
                penalty += tally.penalty(timing) * remaining;
                if have_prev {
                    // Collapsing repeats the fixed point, so the canonical
                    // state (which ignores absolute clock values) is
                    // unchanged and the memo stays valid for later calls.
                    memo.store(mem, &canon_prev, last);
                }
                return (penalty, driven);
            }
            std::mem::swap(&mut canon_prev, &mut canon_cur);
            have_prev = true;
        }
        last = drive_pass(tlb, hierarchy, mem);
        last.flush(tlb, hierarchy, 1);
        penalty += last.penalty(timing);
        driven += 1;
        pass += 1;
    }
    if try_collapse && have_prev {
        // `canon_prev` is the state the final driven pass started from;
        // memoize it so a subsequent call over the same stream can collapse
        // immediately if that pass turns out to have been a fixed point.
        memo.store(mem, &canon_prev, last);
    }
    (penalty, driven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessKind, CacheConfig};
    use crate::hierarchy::HierarchyConfig;
    use crate::tlb::TlbConfig;

    fn units() -> (Tlb, Hierarchy) {
        // Small geometry so fitting/thrashing regimes are cheap to hit.
        let h = HierarchyConfig {
            l1: CacheConfig::new(4 * 1024, 64, 8),
            l2: CacheConfig::new(16 * 1024, 64, 8),
            l3: CacheConfig::new(64 * 1024, 64, 16),
            prefetch_next_line: false,
        };
        let t = TlbConfig { entries: 16, associativity: 4, page_bytes: 4096 };
        (Tlb::new(t), Hierarchy::new(h))
    }

    /// The reference semantics: the exact per-run loop from
    /// `Cpu::replay_segment`'s fallback path.
    fn reference_replay(
        tlb: &mut Tlb,
        hierarchy: &mut Hierarchy,
        mem: &[MemRun],
        trips: u64,
        timing: &TimingConfig,
    ) -> u64 {
        let mut penalty = 0u64;
        for _ in 0..trips {
            for run in mem {
                let walks = tlb.translate_batch(&run.addrs);
                penalty += walks * timing.tlb_walk_latency;
                let levels = hierarchy.access_batch(&run.addrs, run.kind);
                if run.kind == AccessKind::Read {
                    penalty += levels.l2 * timing.l2_latency
                        + levels.l3 * timing.l3_latency
                        + levels.memory * timing.memory_latency;
                }
            }
        }
        penalty
    }

    fn assert_parity(mem: &[MemRun], trips: u64) {
        let timing = TimingConfig::default_sim();
        let (mut tlb_a, mut hier_a) = units();
        let (mut tlb_b, mut hier_b) = units();
        let pen_a = reference_replay(&mut tlb_a, &mut hier_a, mem, trips, &timing);
        let pen_b =
            replay_mem(&mut tlb_b, &mut hier_b, mem, trips, &timing, &mut StreamMemo::default());
        assert_eq!(pen_a, pen_b, "penalty cycles diverged");
        assert_eq!(tlb_a.stats, tlb_b.stats, "TLB stats diverged");
        assert_eq!(hier_a.stats(), hier_b.stats(), "hierarchy stats diverged");
        // Future behavior must match too: hit the same probe stream on
        // both and require identical outcomes (state equivalence).
        let probes: Vec<u64> = (0..512u64).map(|i| i * 4096 + (i % 7) * 64).collect();
        let pa = hier_a.access_batch(&probes, AccessKind::Read);
        let pb = hier_b.access_batch(&probes, AccessKind::Read);
        assert_eq!(pa, pb, "post-replay hierarchy behavior diverged");
        let wa = tlb_a.translate_batch(&probes);
        let wb = tlb_b.translate_batch(&probes);
        assert_eq!(wa, wb, "post-replay TLB behavior diverged");
    }

    /// Deterministic pseudo-random addresses (xorshift, no deps).
    fn scramble(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    fn chase(lines: u64, seed: u64) -> MemRun {
        let mut addrs: Vec<u64> = (0..lines).map(|i| i * 64).collect();
        let mut state = seed | 1;
        for i in (1..lines as usize).rev() {
            state = scramble(state);
            addrs.swap(i, (state % i as u64) as usize);
        }
        MemRun { kind: AccessKind::Read, addrs }
    }

    #[test]
    fn parity_for_fitting_working_set() {
        assert_parity(&[chase(32, 5)], 6);
    }

    #[test]
    fn parity_for_thrashing_working_set() {
        // 4x the L3 line capacity: steady-state misses at every level.
        assert_parity(&[chase(4096, 9)], 4);
    }

    #[test]
    fn parity_for_mixed_kind_runs_with_repeats() {
        // Repeated addresses within a pass and interleaved store runs.
        let loads = MemRun {
            kind: AccessKind::Read,
            addrs: (0..3000u64).map(|i| scramble(i + 11) % 2048 * 64).collect(),
        };
        let stores = MemRun {
            kind: AccessKind::Write,
            addrs: (0..600u64).map(|i| scramble(i + 29) % 512 * 64).collect(),
        };
        let tail = MemRun {
            kind: AccessKind::Read,
            addrs: (0..900u64).map(|i| scramble(i + 3) % 4096 * 64).collect(),
        };
        assert_parity(&[loads, stores, tail], 3);
    }

    #[test]
    fn parity_below_the_collapse_threshold() {
        assert_parity(&[chase(8, 2)], 10);
    }

    #[test]
    fn parity_across_warmup_reset_measure_sequences() {
        // The runner's shape: warmup passes, stats reset, measured passes.
        let timing = TimingConfig::default_sim();
        let mem = [chase(2048, 7)];
        let (mut tlb_a, mut hier_a) = units();
        let (mut tlb_b, mut hier_b) = units();
        // One memo across both calls, as in the Cpu: the measure call may
        // collapse straight off the warmup call's memoized fixed point.
        let mut memo = StreamMemo::default();
        reference_replay(&mut tlb_a, &mut hier_a, &mem, 2, &timing);
        replay_mem(&mut tlb_b, &mut hier_b, &mem, 2, &timing, &mut memo);
        tlb_a.reset_stats();
        hier_a.reset_stats();
        tlb_b.reset_stats();
        hier_b.reset_stats();
        let pen_a = reference_replay(&mut tlb_a, &mut hier_a, &mem, 4, &timing);
        let pen_b = replay_mem(&mut tlb_b, &mut hier_b, &mem, 4, &timing, &mut memo);
        assert_eq!(pen_a, pen_b);
        assert_eq!(tlb_a.stats, tlb_b.stats);
        assert_eq!(hier_a.stats(), hier_b.stats());
    }

    #[test]
    fn steady_passes_are_collapsed_not_driven() {
        let timing = TimingConfig::default_sim();
        let mem = [chase(2048, 13)];
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &mem, 64, &timing, &mut memo);
        assert!(driven < 8, "expected steady-state collapse, drove {driven}/64 passes");
    }

    #[test]
    fn memoized_fixed_point_collapses_across_calls() {
        // The runner's warmup/measure split: the warmup call memoizes its
        // last driven pass; the measure call starts from the same state
        // with the same stream and must not drive the stream at all.
        let timing = TimingConfig::default_sim();
        let mem = [chase(2048, 21)];
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        replay_mem_counted(&mut tlb, &mut hier, &mem, 4, &timing, &mut memo);
        tlb.reset_stats();
        hier.reset_stats();
        let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &mem, 8, &timing, &mut memo);
        assert_eq!(driven, 0, "measure call should collapse from the cross-call memo");
        // And the memo must not fire for a different stream.
        let other = [chase(2048, 33)];
        let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &other, 2, &timing, &mut memo);
        assert!(driven > 0, "a different stream must miss the memo");
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let timing = TimingConfig::default_sim();
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        assert_eq!(replay_mem(&mut tlb, &mut hier, &[], 5, &timing, &mut memo), 0);
        assert_eq!(hier.stats().l1.accesses(), 0);
    }
}
