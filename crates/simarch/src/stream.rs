//! Fast-path replay of recorded memory streams.
//!
//! [`crate::cpu::Cpu::replay_passes`] spends almost all of its time
//! re-driving the TLB and cache hierarchy with a recorded address stream,
//! one pass per loop trip. This module replays that stream with three
//! exact optimizations:
//!
//! * **Hoisted bookkeeping.** Each access runs the same lookup / victim /
//!   stamp sequence as [`crate::hierarchy::Hierarchy::access`], but the
//!   per-access statistics dispatch, load-level attribution, and latency
//!   arithmetic are replaced by bulk counters (accesses satisfied per
//!   level, split by kind, plus prefetch probes and fills) flushed once
//!   per pass.
//! * **Steady-state pass collapse.** Unit state is folded to a *canonical
//!   form* capturing exactly what a future stream can observe — per-set
//!   recency order under LRU, per-way `(valid, tag)` pairs plus the pLRU
//!   bit word under TreePlru, the same plus the xorshift state under
//!   Random (see `Cache::canonical_into`). When the canonical state
//!   before a pass equals the canonical state before the previous pass,
//!   every remaining pass must repeat that pass's decisions exactly, so
//!   the remaining trips are settled analytically: stats, penalties, and
//!   clock advances are multiplied out and the stream is never touched
//!   again.
//! * **Cross-call memoization.** In-call collapse still needs one driven
//!   pass as its comparison point, so the warmup-then-measure call pair
//!   every runner issues would drive a measured pass anyway. The
//!   [`StreamMemo`] carries driven fixed-point candidates (stream copy,
//!   canonical pre-state, tally) across calls in a small table keyed by
//!   stream identity: a call whose entry state matches the canonical
//!   state a previous driven pass over the same stream started from
//!   collapses all of its trips without touching the stream once. The
//!   table holds [`MEMO_CAPACITY`] streams so multi-segment kernels
//!   (dstore's mixed load/store program) keep one entry per segment
//!   instead of thrashing a single slot.
//!
//! The fast path covers every replacement policy and the next-line
//! prefetcher; [`crate::hierarchy::HierarchyConfig::fast_path_eligible`]
//! names the one structural exclusion (pseudo-LRU wider than 32 ways).
//! The parity tests below pin bit-identical statistics, penalties,
//! prefetch fills, and future behavior against the reference loop for
//! fitting, thrashing, and mixed streams under every policy × prefetch
//! combination.

use crate::cache::AccessKind;
use crate::cpu::TimingConfig;
use crate::hierarchy::{Hierarchy, MemLevel};
use crate::tlb::Tlb;
use crate::trace::MemRun;

/// Minimum accesses per pass before canonicalization is attempted: below
/// this, serializing ~19k state slots per pass costs more than driving
/// the stream. Purely a performance threshold — results are identical
/// either way.
const COLLAPSE_MIN_ACCESSES: u64 = 2048;

/// Memoized streams kept per [`StreamMemo`]. The runners' kernels have at
/// most a handful of distinct segments (dstore interleaves two), so a
/// small table already removes all cross-segment thrashing; the bound
/// keeps the per-pass lookup a short linear scan and the per-`Cpu`
/// footprint predictable.
const MEMO_CAPACITY: usize = 8;

/// Everything one pass over the stream did, bucketed by the level that
/// satisfied each access and by access kind. All derived statistics
/// (per-level hit/miss splits, load attribution, prefetch fills, latency
/// penalties, and per-unit clock advances) are linear in these buckets,
/// which is what makes collapsed passes exact.
#[derive(Debug, Default, Clone, Copy)]
struct PassTally {
    /// Demand reads satisfied at L1/L2/L3/memory.
    read_lv: [u64; 4],
    /// Writes satisfied at L1/L2/L3/memory.
    write_lv: [u64; 4],
    /// TLB hits.
    tlb_hits: u64,
    /// TLB misses (page walks).
    tlb_misses: u64,
    /// Next-line prefetch probes issued (one per access satisfied below
    /// L1 when the prefetcher is on).
    prefetch_probes: u64,
    /// Prefetch probes that missed L1 and filled it.
    prefetch_fills: u64,
}

/// Observer-facing counters for the stream engine, accumulated on the
/// [`StreamMemo`] that lives with each `Cpu`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Replay calls that collapsed straight off a memoized cross-call
    /// fixed point.
    pub memo_hits: u64,
    /// Replay calls whose entry state matched no memo entry (the stream
    /// had to be driven at least once).
    pub memo_misses: u64,
    /// Passes settled analytically instead of being driven.
    pub passes_collapsed: u64,
}

impl StreamStats {
    /// Accumulates another core's counters — runners sum the per-`Cpu`
    /// stats across a sweep before publishing them to the observer.
    pub fn merge(&mut self, other: StreamStats) {
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.passes_collapsed += other.passes_collapsed;
    }
}

/// One memoized driven pass: the stream it drove, the canonical unit
/// state it started from, and its tally.
#[derive(Debug, Clone)]
struct MemoEntry {
    /// Per-run kind and length of the memoized stream.
    runs: Vec<(AccessKind, usize)>,
    /// All run addresses, concatenated in stream order.
    addrs: Vec<u64>,
    /// Canonical TLB + hierarchy state before the memoized pass.
    canon: Vec<u64>,
    /// What that pass did.
    tally: PassTally,
    /// Logical timestamp of the last hit or store, for LRU eviction.
    last_used: u64,
}

impl MemoEntry {
    fn matches_stream(&self, mem: &[MemRun]) -> bool {
        if self.runs.len() != mem.len()
            || !self
                .runs
                .iter()
                .zip(mem)
                .all(|(&(kind, len), run)| kind == run.kind && len == run.addrs.len())
        {
            return false;
        }
        let mut off = 0usize;
        mem.iter().all(|run| {
            let next = off + run.addrs.len();
            let eq = self.addrs[off..next] == run.addrs[..];
            off = next;
            eq
        })
    }
}

/// A cross-call memo of driven fixed-point candidates, keyed by stream
/// identity.
///
/// Steady-state collapse inside one [`replay_mem`] call needs at least one
/// driven pass to compare against, so a warmup call followed by a measure
/// call over the same stream (the runners' universal shape) still drives
/// one measured pass. The memo carries the comparison point *across*
/// calls: when a pass's entry state matches the canonical state a previous
/// driven pass started from — meaning that pass was a behavioral fixed
/// point — and the stream is byte-identical, every remaining trip
/// collapses without touching the stream.
///
/// The table holds up to [`MEMO_CAPACITY`] streams, replacing an entry
/// in-place when its stream recurs and evicting the least-recently-used
/// entry when a new stream arrives at capacity (logical `last_used`
/// timestamps, no wall clock). Multi-segment kernels that alternate
/// between segments therefore keep one entry per segment alive.
///
/// Soundness does not rest on hashing or identity heuristics: each entry
/// stores a full copy of the stream and the full canonical state, and a
/// hit requires both to compare equal. Any interleaved activity that
/// perturbs unit state changes the canonical form and simply misses.
#[derive(Debug, Clone, Default)]
pub(crate) struct StreamMemo {
    entries: Vec<MemoEntry>,
    /// Logical clock for `last_used` stamps.
    tick: u64,
    /// Hit/miss/collapse counters surfaced to the observer layer.
    stats: StreamStats,
}

impl StreamMemo {
    /// Finds a memoized pass over `mem` that started from exactly `canon`.
    fn lookup(&mut self, mem: &[MemRun], canon: &[u64]) -> Option<PassTally> {
        for entry in &mut self.entries {
            if entry.canon == canon && entry.matches_stream(mem) {
                self.tick += 1;
                entry.last_used = self.tick;
                return Some(entry.tally);
            }
        }
        None
    }

    /// Memoizes a driven pass, replacing this stream's entry if present,
    /// otherwise evicting the least-recently-used entry at capacity.
    fn store(&mut self, mem: &[MemRun], canon: &[u64], tally: PassTally) {
        self.tick += 1;
        if let Some(entry) = self.entries.iter_mut().find(|e| e.matches_stream(mem)) {
            entry.canon.clear();
            entry.canon.extend_from_slice(canon);
            entry.tally = tally;
            entry.last_used = self.tick;
            return;
        }
        if self.entries.len() >= MEMO_CAPACITY {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.entries.swap_remove(victim);
        }
        let mut runs = Vec::with_capacity(mem.len());
        let mut addrs = Vec::new();
        for run in mem {
            runs.push((run.kind, run.addrs.len()));
            addrs.extend_from_slice(&run.addrs);
        }
        self.entries.push(MemoEntry {
            runs,
            addrs,
            canon: canon.to_vec(),
            tally,
            last_used: self.tick,
        });
    }

    /// Counter snapshot for the observer layer.
    pub(crate) fn stats(&self) -> StreamStats {
        self.stats
    }
}

fn level_index(level: MemLevel) -> usize {
    match level {
        MemLevel::L1 => 0,
        MemLevel::L2 => 1,
        MemLevel::L3 => 2,
        MemLevel::Memory => 3,
    }
}

impl PassTally {
    /// Penalty cycles one such pass contributes — identical arithmetic to
    /// the reference loop: read latencies by satisfying level plus page
    /// walks (writes are penalized for walks but not for hierarchy
    /// latency, matching `Cpu::replay_segment`; prefetches are free).
    fn penalty(&self, t: &TimingConfig) -> u64 {
        self.read_lv[1] * t.l2_latency
            + self.read_lv[2] * t.l3_latency
            + self.read_lv[3] * t.memory_latency
            + self.tlb_misses * t.tlb_walk_latency
    }

    /// Flushes `times` repetitions of this pass into unit statistics.
    fn flush(&self, tlb: &mut Tlb, hierarchy: &mut Hierarchy, times: u64) {
        let scale = |lv: [u64; 4]| lv.map(|n| n * times);
        tlb.add_stats(self.tlb_hits * times, self.tlb_misses * times);
        hierarchy.add_bulk_stats(scale(self.read_lv), scale(self.write_lv));
        hierarchy.add_prefetch_fills(self.prefetch_fills * times);
    }

    /// Advances unit clocks as if `times` such passes were driven: each
    /// access bumps a level's clock once per probe and once per fill, and
    /// each prefetch bumps L1 once for the probe plus once when it fills,
    /// so the advance per pass is fully determined by the buckets.
    fn advance_clocks(&self, tlb: &mut Tlb, hierarchy: &mut Hierarchy, times: u64) {
        let both = |i: usize| self.read_lv[i] + self.write_lv[i];
        let accesses = both(0) + both(1) + both(2) + both(3);
        let l1_misses = both(1) + both(2) + both(3);
        let l2_misses = both(2) + both(3);
        let l3_misses = both(3);
        tlb.advance_clock(accesses * times);
        hierarchy.advance_clocks(
            (accesses + l1_misses + self.prefetch_probes + self.prefetch_fills) * times,
            (l1_misses + l2_misses) * times,
            (l2_misses + l3_misses) * times,
        );
    }
}

/// Drives one full pass of the stream, mirroring the reference loop's
/// per-unit call sequence exactly (TLB and hierarchy are independent
/// units, so per-address interleaving and per-run batching are
/// state-equivalent), including the next-line prefetch after every access
/// satisfied below L1.
fn drive_pass(tlb: &mut Tlb, hierarchy: &mut Hierarchy, mem: &[MemRun]) -> PassTally {
    let mut tally = PassTally::default();
    let prefetch = hierarchy.prefetch_enabled();
    for run in mem {
        let is_read = run.kind == AccessKind::Read;
        if prefetch {
            for &addr in &run.addrs {
                if tlb.translate_fast(addr) {
                    tally.tlb_hits += 1;
                } else {
                    tally.tlb_misses += 1;
                }
                let level = hierarchy.access_fast(addr);
                let lv = if is_read { &mut tally.read_lv } else { &mut tally.write_lv };
                lv[level_index(level)] += 1;
                if level != MemLevel::L1 {
                    tally.prefetch_probes += 1;
                    if hierarchy.prefetch_fast(addr) {
                        tally.prefetch_fills += 1;
                    }
                }
            }
        } else {
            let lv = if is_read { &mut tally.read_lv } else { &mut tally.write_lv };
            for &addr in &run.addrs {
                if tlb.translate_fast(addr) {
                    tally.tlb_hits += 1;
                } else {
                    tally.tlb_misses += 1;
                }
                // lint: allow(reachable_panic): level_index maps the four MemLevel variants to 0..4
                lv[level_index(hierarchy.access_fast(addr))] += 1;
            }
        }
    }
    tally
}

/// Replays `trips` passes of a recorded memory stream against the TLB and
/// hierarchy, returning the penalty cycles accrued. Statistics, penalties,
/// prefetch fills, and all future unit behavior are bit-identical to
/// driving the reference loop (`translate_batch` + `access_batch` per run,
/// `trips` times).
///
/// Caller must ensure [`crate::hierarchy::HierarchyConfig::fast_path_eligible`]
/// holds.
pub(crate) fn replay_mem(
    tlb: &mut Tlb,
    hierarchy: &mut Hierarchy,
    mem: &[MemRun],
    trips: u64,
    timing: &TimingConfig,
    memo: &mut StreamMemo,
) -> u64 {
    replay_mem_counted(tlb, hierarchy, mem, trips, timing, memo).0
}

/// [`replay_mem`] plus the number of passes actually driven (the rest
/// were collapsed analytically) — exposed for the collapse tests.
fn replay_mem_counted(
    tlb: &mut Tlb,
    hierarchy: &mut Hierarchy,
    mem: &[MemRun],
    trips: u64,
    timing: &TimingConfig,
    memo: &mut StreamMemo,
) -> (u64, u64) {
    let accesses_per_pass: u64 = mem.iter().map(|r| r.addrs.len() as u64).sum();
    if accesses_per_pass == 0 || trips == 0 {
        return (0, 0);
    }
    let try_collapse = accesses_per_pass >= COLLAPSE_MIN_ACCESSES;
    let mut canon_prev: Vec<u64> = Vec::new();
    let mut canon_cur: Vec<u64> = Vec::new();
    let mut have_prev = false;
    let mut penalty = 0u64;
    let mut last = PassTally::default();
    let mut driven = 0u64;
    let mut pass = 0u64;
    while pass < trips {
        let remaining = trips - pass;
        if try_collapse {
            canon_cur.clear();
            tlb.canonical_into(&mut canon_cur);
            hierarchy.canonical_into(&mut canon_cur);
            // A fixed point witnessed either within this call (the previous
            // driven pass started from this exact state) or by the memo (a
            // driven pass from an earlier call did, over the same stream):
            // every remaining pass must repeat that pass's decisions. The
            // memo is consulted on *every* pass, not just the first, so a
            // multi-segment kernel that re-enters a memoized steady state
            // after one transition pass still collapses the rest.
            let hit = if have_prev && canon_cur == canon_prev {
                Some(last)
            } else if let Some(tally) = memo.lookup(mem, &canon_cur) {
                memo.stats.memo_hits += 1;
                Some(tally)
            } else {
                if pass == 0 {
                    memo.stats.memo_misses += 1;
                }
                None
            };
            if let Some(tally) = hit {
                tally.flush(tlb, hierarchy, remaining);
                tally.advance_clocks(tlb, hierarchy, remaining);
                penalty += tally.penalty(timing) * remaining;
                memo.stats.passes_collapsed += remaining;
                // Collapsing repeats the fixed point, so the canonical
                // state (which ignores absolute clock values) is unchanged
                // and `canon_cur` remains this stream's valid entry state.
                memo.store(mem, &canon_cur, tally);
                return (penalty, driven);
            }
            std::mem::swap(&mut canon_prev, &mut canon_cur);
            have_prev = true;
        }
        last = drive_pass(tlb, hierarchy, mem);
        last.flush(tlb, hierarchy, 1);
        penalty += last.penalty(timing);
        driven += 1;
        pass += 1;
    }
    if try_collapse && have_prev {
        // `canon_prev` is the state the final driven pass started from;
        // memoize it so a subsequent call over the same stream can collapse
        // immediately if that pass turns out to have been a fixed point.
        memo.store(mem, &canon_prev, last);
    }
    (penalty, driven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{AccessKind, CacheConfig, ReplacementPolicy};
    use crate::hierarchy::HierarchyConfig;
    use crate::tlb::TlbConfig;

    fn units_with(policy: ReplacementPolicy, prefetch: bool) -> (Tlb, Hierarchy) {
        // Small geometry so fitting/thrashing regimes are cheap to hit.
        let h = HierarchyConfig {
            l1: CacheConfig::with_policy(4 * 1024, 64, 8, policy),
            l2: CacheConfig::with_policy(16 * 1024, 64, 8, policy),
            l3: CacheConfig::with_policy(64 * 1024, 64, 16, policy),
            prefetch_next_line: prefetch,
        };
        let t = TlbConfig { entries: 16, associativity: 4, page_bytes: 4096 };
        (Tlb::new(t), Hierarchy::new(h))
    }

    fn units() -> (Tlb, Hierarchy) {
        units_with(ReplacementPolicy::Lru, false)
    }

    /// The reference semantics: the exact per-run loop from
    /// `Cpu::replay_segment`'s fallback path.
    fn reference_replay(
        tlb: &mut Tlb,
        hierarchy: &mut Hierarchy,
        mem: &[MemRun],
        trips: u64,
        timing: &TimingConfig,
    ) -> u64 {
        let mut penalty = 0u64;
        for _ in 0..trips {
            for run in mem {
                let walks = tlb.translate_batch(&run.addrs);
                penalty += walks * timing.tlb_walk_latency;
                let levels = hierarchy.access_batch(&run.addrs, run.kind);
                if run.kind == AccessKind::Read {
                    penalty += levels.l2 * timing.l2_latency
                        + levels.l3 * timing.l3_latency
                        + levels.memory * timing.memory_latency;
                }
            }
        }
        penalty
    }

    fn assert_parity_under(policy: ReplacementPolicy, prefetch: bool, mem: &[MemRun], trips: u64) {
        let timing = TimingConfig::default_sim();
        let (mut tlb_a, mut hier_a) = units_with(policy, prefetch);
        let (mut tlb_b, mut hier_b) = units_with(policy, prefetch);
        let pen_a = reference_replay(&mut tlb_a, &mut hier_a, mem, trips, &timing);
        let pen_b =
            replay_mem(&mut tlb_b, &mut hier_b, mem, trips, &timing, &mut StreamMemo::default());
        let tag = format!("{policy:?}/prefetch={prefetch}");
        assert_eq!(pen_a, pen_b, "{tag}: penalty cycles diverged");
        assert_eq!(tlb_a.stats, tlb_b.stats, "{tag}: TLB stats diverged");
        assert_eq!(hier_a.stats(), hier_b.stats(), "{tag}: hierarchy stats diverged");
        // Future behavior must match too: hit the same probe stream on
        // both and require identical outcomes (state equivalence).
        let probes: Vec<u64> = (0..512u64).map(|i| i * 4096 + (i % 7) * 64).collect();
        let pa = hier_a.access_batch(&probes, AccessKind::Read);
        let pb = hier_b.access_batch(&probes, AccessKind::Read);
        assert_eq!(pa, pb, "{tag}: post-replay hierarchy behavior diverged");
        assert_eq!(
            hier_a.stats(),
            hier_b.stats(),
            "{tag}: post-replay stats (incl. prefetch fills) diverged"
        );
        let wa = tlb_a.translate_batch(&probes);
        let wb = tlb_b.translate_batch(&probes);
        assert_eq!(wa, wb, "{tag}: post-replay TLB behavior diverged");
    }

    fn every_config() -> impl Iterator<Item = (ReplacementPolicy, bool)> {
        [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Random]
            .into_iter()
            .flat_map(|p| [(p, false), (p, true)])
    }

    /// Deterministic pseudo-random addresses (xorshift, no deps).
    fn scramble(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    fn chase(lines: u64, seed: u64) -> MemRun {
        let mut addrs: Vec<u64> = (0..lines).map(|i| i * 64).collect();
        let mut state = seed | 1;
        for i in (1..lines as usize).rev() {
            state = scramble(state);
            addrs.swap(i, (state % i as u64) as usize);
        }
        MemRun { kind: AccessKind::Read, addrs }
    }

    #[test]
    fn parity_for_fitting_working_set() {
        for (policy, prefetch) in every_config() {
            assert_parity_under(policy, prefetch, &[chase(32, 5)], 6);
        }
    }

    #[test]
    fn parity_for_thrashing_working_set() {
        // 4x the L3 line capacity: steady-state misses at every level.
        for (policy, prefetch) in every_config() {
            assert_parity_under(policy, prefetch, &[chase(4096, 9)], 4);
        }
    }

    #[test]
    fn parity_for_mixed_kind_runs_with_repeats() {
        // Repeated addresses within a pass and interleaved store runs.
        let loads = MemRun {
            kind: AccessKind::Read,
            addrs: (0..3000u64).map(|i| scramble(i + 11) % 2048 * 64).collect(),
        };
        let stores = MemRun {
            kind: AccessKind::Write,
            addrs: (0..600u64).map(|i| scramble(i + 29) % 512 * 64).collect(),
        };
        let tail = MemRun {
            kind: AccessKind::Read,
            addrs: (0..900u64).map(|i| scramble(i + 3) % 4096 * 64).collect(),
        };
        for (policy, prefetch) in every_config() {
            assert_parity_under(
                policy,
                prefetch,
                &[loads.clone(), stores.clone(), tail.clone()],
                3,
            );
        }
    }

    #[test]
    fn parity_below_the_collapse_threshold() {
        for (policy, prefetch) in every_config() {
            assert_parity_under(policy, prefetch, &[chase(8, 2)], 10);
        }
    }

    #[test]
    fn parity_for_l2_resident_prefetch_stream() {
        // Sequential-ish stream larger than L1 but inside L2, the regime
        // where the next-line prefetcher actually fires and hits.
        let mem = [MemRun {
            kind: AccessKind::Read,
            addrs: (0..4096u64).map(|i| (i % 128) * 64).collect(),
        }];
        for policy in
            [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru, ReplacementPolicy::Random]
        {
            assert_parity_under(policy, true, &mem, 5);
        }
    }

    #[test]
    fn parity_across_warmup_reset_measure_sequences() {
        // The runner's shape: warmup passes, stats reset, measured passes.
        let timing = TimingConfig::default_sim();
        let mem = [chase(2048, 7)];
        for (policy, prefetch) in every_config() {
            let (mut tlb_a, mut hier_a) = units_with(policy, prefetch);
            let (mut tlb_b, mut hier_b) = units_with(policy, prefetch);
            // One memo across both calls, as in the Cpu: the measure call
            // may collapse straight off the warmup call's memoized fixed
            // point.
            let mut memo = StreamMemo::default();
            reference_replay(&mut tlb_a, &mut hier_a, &mem, 2, &timing);
            replay_mem(&mut tlb_b, &mut hier_b, &mem, 2, &timing, &mut memo);
            tlb_a.reset_stats();
            hier_a.reset_stats();
            tlb_b.reset_stats();
            hier_b.reset_stats();
            let pen_a = reference_replay(&mut tlb_a, &mut hier_a, &mem, 4, &timing);
            let pen_b = replay_mem(&mut tlb_b, &mut hier_b, &mem, 4, &timing, &mut memo);
            let tag = format!("{policy:?}/prefetch={prefetch}");
            assert_eq!(pen_a, pen_b, "{tag}");
            assert_eq!(tlb_a.stats, tlb_b.stats, "{tag}");
            assert_eq!(hier_a.stats(), hier_b.stats(), "{tag}");
        }
    }

    #[test]
    fn steady_passes_are_collapsed_not_driven() {
        let timing = TimingConfig::default_sim();
        let mem = [chase(2048, 13)];
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::TreePlru] {
            let (mut tlb, mut hier) = units_with(policy, false);
            let mut memo = StreamMemo::default();
            let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &mem, 64, &timing, &mut memo);
            assert!(driven < 8, "{policy:?}: expected collapse, drove {driven}/64 passes");
            assert!(memo.stats().passes_collapsed >= 56, "{policy:?}: collapse counter");
        }
        // A *fitting* Random stream also collapses (no evictions, so the
        // xorshift state in the canonical form stays put); the thrashing
        // stream above would not, since every eviction advances the RNG.
        let fitting = [MemRun {
            kind: AccessKind::Read,
            addrs: (0..2048u64).map(|i| (i % 32) * 64).collect(),
        }];
        let (mut tlb, mut hier) = units_with(ReplacementPolicy::Random, false);
        let mut memo = StreamMemo::default();
        let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &fitting, 64, &timing, &mut memo);
        assert!(driven < 8, "Random fitting stream should collapse, drove {driven}/64");
    }

    #[test]
    fn memoized_fixed_point_collapses_across_calls() {
        // The runner's warmup/measure split: the warmup call memoizes its
        // last driven pass; the measure call starts from the same state
        // with the same stream and must not drive the stream at all.
        let timing = TimingConfig::default_sim();
        let mem = [chase(2048, 21)];
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        replay_mem_counted(&mut tlb, &mut hier, &mem, 4, &timing, &mut memo);
        tlb.reset_stats();
        hier.reset_stats();
        let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &mem, 8, &timing, &mut memo);
        assert_eq!(driven, 0, "measure call should collapse from the cross-call memo");
        assert!(memo.stats().memo_hits >= 1);
        // And the memo must not fire for a different stream.
        let other = [chase(2048, 33)];
        let (_, driven) = replay_mem_counted(&mut tlb, &mut hier, &other, 2, &timing, &mut memo);
        assert!(driven > 0, "a different stream must miss the memo");
        assert!(memo.stats().memo_misses >= 1);
    }

    #[test]
    fn keyed_memo_survives_alternating_segments() {
        // dstore's shape: two distinct segments (loads over one footprint,
        // stores over another) replayed alternately, each fitting L1
        // together. A single-slot memo thrashes — every call overwrites
        // the other segment's entry and drives two passes (one to seed the
        // in-call comparison point, one to witness the fixed point). The
        // keyed table keeps both entries, so after one full A/B cycle each
        // call drives at most the single transition pass that moves the
        // recency order from "other segment MRU" back to this segment's
        // memoized fixed point.
        let timing = TimingConfig::default_sim();
        let seg_a = [MemRun {
            kind: AccessKind::Read,
            addrs: (0..2048u64).map(|i| (i % 32) * 64).collect(),
        }];
        let seg_b = [MemRun {
            kind: AccessKind::Write,
            addrs: (0..2048u64).map(|i| (1000 + i % 32) * 64).collect(),
        }];
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        // Warmup cycle: fills both footprints and memoizes both segments.
        replay_mem_counted(&mut tlb, &mut hier, &seg_a, 4, &timing, &mut memo);
        replay_mem_counted(&mut tlb, &mut hier, &seg_b, 4, &timing, &mut memo);
        replay_mem_counted(&mut tlb, &mut hier, &seg_a, 4, &timing, &mut memo);
        replay_mem_counted(&mut tlb, &mut hier, &seg_b, 4, &timing, &mut memo);
        // Steady alternation: at most one driven (transition) pass per
        // call, the rest collapse off this segment's memo entry.
        for round in 0..4 {
            let (_, driven_a) =
                replay_mem_counted(&mut tlb, &mut hier, &seg_a, 6, &timing, &mut memo);
            assert!(driven_a <= 1, "round {round}: segment A drove {driven_a} passes");
            let (_, driven_b) =
                replay_mem_counted(&mut tlb, &mut hier, &seg_b, 6, &timing, &mut memo);
            assert!(driven_b <= 1, "round {round}: segment B drove {driven_b} passes");
        }
        assert!(memo.stats().memo_hits >= 8, "alternating segments must hit the keyed memo");
    }

    #[test]
    fn memo_table_is_bounded_and_evicts_lru() {
        let timing = TimingConfig::default_sim();
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        for seed in 0..12u64 {
            let mem = [chase(2048, 100 + seed * 2)];
            replay_mem_counted(&mut tlb, &mut hier, &mem, 2, &timing, &mut memo);
        }
        assert!(memo.entries.len() <= MEMO_CAPACITY, "table grew past capacity");
        assert_eq!(memo.entries.len(), MEMO_CAPACITY, "distinct streams should fill the table");
    }

    #[test]
    fn empty_stream_is_a_no_op() {
        let timing = TimingConfig::default_sim();
        let (mut tlb, mut hier) = units();
        let mut memo = StreamMemo::default();
        assert_eq!(replay_mem(&mut tlb, &mut hier, &[], 5, &timing, &mut memo), 0);
        assert_eq!(hier.stats().l1.accesses(), 0);
    }
}
