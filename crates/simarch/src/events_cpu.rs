//! The simulated CPU's raw-event inventory, modeled on Intel Sapphire
//! Rapids.
//!
//! Faithful behavioral details that the paper's results hinge on:
//!
//! * `FP_ARITH_INST_RETIRED:*` counts an FMA instruction **twice** (as two
//!   arithmetic uops), and there is **no** dedicated FMA-only event — this
//!   is why "SP/DP FMA Instrs" metrics come out non-composable (Table V);
//! * `BR_INST_RETIRED:ALL_BRANCHES` covers conditional + unconditional
//!   control flow, and no event measures *executed* (speculative)
//!   conditional branches — hence "Conditional Branches Executed" has
//!   backward error 1.0 (Table VII);
//! * the `MEM_LOAD_RETIRED`/`L2_RQSTS` families carry the largest
//!   measurement noise (§IV of the paper and Table VIII);
//! * a long tail of frontend, uncore, power, and software events exists
//!   that measures nothing the CAT kernels control — the noisy cluster of
//!   Figure 2.

use crate::cpu::ExecStats;
use crate::isa::{FpKind, Precision, VecWidth};
use crate::noise::NoiseModel;
use catalyze_events::{EventCatalog, EventDomain, EventId, EventInfo, EventName};
use serde::{Deserialize, Serialize};

/// Base semantic: what an event truly counts, as a function of execution
/// statistics. The PMU evaluates this and then applies the noise model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CpuBase {
    /// `FP_ARITH_INST_RETIRED`-style count: optional precision/width
    /// filters, FMA counted twice.
    FpArith {
        /// Precision filter (`None` = all).
        prec: Option<Precision>,
        /// Width filter (`None` = all).
        width: Option<VecWidth>,
    },
    /// All retired instructions.
    Instructions,
    /// Retired no-ops.
    Nops,
    /// Core cycles.
    Cycles,
    /// Issued micro-ops.
    Uops,
    /// All integer ALU instructions.
    IntAll,
    /// Integer ALU instructions of one kind (index into
    /// [`ExecStats::int_ops`]).
    IntKind(usize),
    /// All retired branches.
    BrAll,
    /// Retired conditional branches.
    BrCond,
    /// Retired taken conditional branches.
    BrCondTaken,
    /// Retired not-taken conditional branches.
    BrCondNtaken,
    /// Retired unconditional direct jumps.
    BrUncond,
    /// Retired near calls.
    BrCall,
    /// Retired near returns.
    BrRet,
    /// All retired taken branches.
    BrAllTaken,
    /// Mispredicted conditional branches (== all mispredicts here: the
    /// model never mispredicts unconditional flow).
    MispCond,
    /// Mispredicted taken conditional branches.
    MispCondTaken,
    /// Retired loads.
    Loads,
    /// Retired stores.
    Stores,
    /// Retired loads that hit L1.
    L1Hit,
    /// Retired loads that missed L1.
    L1Miss,
    /// Retired loads that hit L2.
    L2Hit,
    /// Retired loads that missed L2.
    L2Miss,
    /// Retired loads that hit L3.
    L3Hit,
    /// Retired loads that missed L3.
    L3Miss,
    /// L2 demand-data-read requests that hit.
    L2RqstsDemandRdHit,
    /// L2 demand-data-read requests that missed.
    L2RqstsDemandRdMiss,
    /// All L2 demand data reads.
    L2RqstsAllDemandRd,
    /// L2 store (RFO) hits.
    L2RqstsRfoHit,
    /// L2 store (RFO) misses.
    L2RqstsRfoMiss,
    /// All L2 store (RFO) requests — every store that missed L1.
    L2RqstsAllRfo,
    /// TLB load misses (page walks).
    DtlbLoadMisses,
    /// TLB load hits.
    DtlbLoadHits,
    /// AMD-style FLOP counter: add/sub *operations*, all precisions.
    FpOpsAddSub,
    /// Multiply operations, all precisions.
    FpOpsMul,
    /// Divide/square-root operations, all precisions.
    FpOpsDivSqrt,
    /// Fused multiply-accumulate operations (two per instruction, times
    /// lanes), all precisions.
    FpOpsMac,
    /// All floating-point operations, all precisions.
    FpOpsAny,
    /// Structurally zero on this machine/workload class (reserved or
    /// inapplicable events).
    Zero,
}

impl CpuBase {
    /// Evaluates the true (pre-noise) count against execution statistics.
    pub fn eval(&self, s: &ExecStats) -> f64 {
        let v: u64 = match *self {
            CpuBase::FpArith { prec, width } => s.fp_filtered(prec, width, 2),
            CpuBase::Instructions => s.instructions,
            CpuBase::Nops => s.nops,
            CpuBase::Cycles => s.cycles,
            CpuBase::Uops => s.uops,
            CpuBase::IntAll => s.int_total(),
            CpuBase::IntKind(i) => s.int_ops[i.min(3)],
            CpuBase::BrAll => s.branch.all_branches(),
            CpuBase::BrCond => s.branch.cond_retired,
            CpuBase::BrCondTaken => s.branch.cond_taken,
            CpuBase::BrCondNtaken => s.branch.cond_not_taken,
            CpuBase::BrUncond => s.branch.uncond_retired,
            CpuBase::BrCall => s.branch.calls,
            CpuBase::BrRet => s.branch.rets,
            CpuBase::BrAllTaken => s.branch.all_taken(),
            CpuBase::MispCond => s.branch.mispredicted,
            CpuBase::MispCondTaken => s.branch.mispredicted_taken,
            CpuBase::Loads => s.loads,
            CpuBase::Stores => s.stores,
            CpuBase::L1Hit => s.memory.loads_hit_l1,
            CpuBase::L1Miss => s.memory.loads_miss_l1,
            CpuBase::L2Hit => s.memory.loads_hit_l2,
            CpuBase::L2Miss => s.memory.loads_miss_l2,
            CpuBase::L3Hit => s.memory.loads_hit_l3,
            CpuBase::L3Miss => s.memory.loads_miss_l3,
            CpuBase::L2RqstsDemandRdHit => s.memory.l2.read_hits,
            CpuBase::L2RqstsDemandRdMiss => s.memory.l2.read_misses,
            CpuBase::L2RqstsAllDemandRd => s.memory.l2.read_hits + s.memory.l2.read_misses,
            CpuBase::L2RqstsRfoHit => s.memory.l2.write_hits,
            CpuBase::L2RqstsRfoMiss => s.memory.l2.write_misses,
            CpuBase::L2RqstsAllRfo => s.memory.l2.write_hits + s.memory.l2.write_misses,
            CpuBase::DtlbLoadMisses => s.tlb.misses,
            CpuBase::DtlbLoadHits => s.tlb.hits,
            CpuBase::FpOpsAddSub => s.fp_ops_by_kind(&[FpKind::Add, FpKind::Sub]),
            CpuBase::FpOpsMul => s.fp_ops_by_kind(&[FpKind::Mul]),
            CpuBase::FpOpsDivSqrt => s.fp_ops_by_kind(&[FpKind::Div, FpKind::Sqrt]),
            CpuBase::FpOpsMac => s.fp_ops_by_kind(&[FpKind::Fma]),
            CpuBase::FpOpsAny => s.fp_ops_by_kind(&[
                FpKind::Add,
                FpKind::Sub,
                FpKind::Mul,
                FpKind::Div,
                FpKind::Sqrt,
                FpKind::Fma,
            ]),
            CpuBase::Zero => 0,
        };
        v as f64
    }
}

/// Full definition of one raw CPU event.
#[derive(Debug, Clone, Serialize, Deserialize)]
// lint: allow(dead_api): re-exported event-definition type in CpuEventSet's public surface
pub struct CpuEventDef {
    /// Catalog entry (name, description, domain).
    pub info: EventInfo,
    /// Base semantic.
    pub base: CpuBase,
    /// Multiplier applied to the base count (models events that fire at a
    /// different granularity, e.g. per-uop variants).
    pub scale: f64,
    /// Observation noise.
    pub noise: NoiseModel,
}

/// The event inventory of the simulated CPU.
#[derive(Debug, Clone)]
pub struct CpuEventSet {
    catalog: EventCatalog,
    defs: Vec<CpuEventDef>,
}

impl CpuEventSet {
    /// Assembles an event set from a catalog and aligned definitions
    /// (used by alternative-architecture inventories such as
    /// [`crate::events_zen::zen_like`]).
    ///
    /// # Panics
    /// Panics when the catalog and definition list disagree in length.
    pub fn from_parts(catalog: EventCatalog, defs: Vec<CpuEventDef>) -> Self {
        assert_eq!(catalog.len(), defs.len(), "catalog/definition mismatch");
        Self { catalog, defs }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The name catalog.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// Event definition by id.
    pub fn def(&self, id: EventId) -> Option<&CpuEventDef> {
        self.defs.get(id.index())
    }

    /// Iterates definitions in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &CpuEventDef)> {
        self.defs.iter().enumerate().map(|(i, d)| (EventId(i as u32), d))
    }

    /// Looks up an id by exact name string.
    pub fn id_of(&self, name: &str) -> Option<EventId> {
        self.catalog.id_of(name)
    }

    /// True (pre-noise) count of an event for given execution stats.
    pub fn true_count(&self, id: EventId, stats: &ExecStats) -> Option<f64> {
        self.defs.get(id.index()).map(|d| d.base.eval(stats) * d.scale)
    }
}

/// Builder used by [`sapphire_rapids_like`].
struct SetBuilder {
    catalog: EventCatalog,
    defs: Vec<CpuEventDef>,
}

impl SetBuilder {
    fn new() -> Self {
        Self { catalog: EventCatalog::new(), defs: Vec::new() }
    }

    fn add(
        &mut self,
        name: EventName,
        desc: &str,
        domain: EventDomain,
        base: CpuBase,
        scale: f64,
        noise: NoiseModel,
    ) {
        let info = EventInfo { name, description: desc.to_string(), domain };
        // lint: allow(panic, reachable_panic): the builder inserts a static, duplicate-free inventory
        self.catalog.add(info.clone()).expect("duplicate event in builder");
        self.defs.push(CpuEventDef { info, base, scale, noise });
    }

    fn finish(self) -> CpuEventSet {
        CpuEventSet { catalog: self.catalog, defs: self.defs }
    }
}

/// Builds the Sapphire-Rapids-like event inventory (~300 events).
pub fn sapphire_rapids_like() -> CpuEventSet {
    let mut b = SetBuilder::new();
    let exact = NoiseModel::None;

    // --- Floating point: the FP_ARITH_INST_RETIRED family (exact). ---
    let widths: [(&str, VecWidth); 3] = [
        ("128B_PACKED", VecWidth::V128),
        ("256B_PACKED", VecWidth::V256),
        ("512B_PACKED", VecWidth::V512),
    ];
    for (prec_name, prec) in [("SINGLE", Precision::Single), ("DOUBLE", Precision::Double)] {
        b.add(
            EventName::cpu_q("FP_ARITH_INST_RETIRED", format!("SCALAR_{prec_name}")),
            "Counts retired scalar FP arithmetic instructions (FMA counts twice)",
            EventDomain::FloatingPoint,
            CpuBase::FpArith { prec: Some(prec), width: Some(VecWidth::Scalar) },
            1.0,
            exact,
        );
        for (wname, w) in widths {
            b.add(
                EventName::cpu_q("FP_ARITH_INST_RETIRED", format!("{wname}_{prec_name}")),
                "Counts retired packed FP arithmetic instructions (FMA counts twice)",
                EventDomain::FloatingPoint,
                CpuBase::FpArith { prec: Some(prec), width: Some(w) },
                1.0,
                exact,
            );
        }
    }
    // Aggregate umasks (linear combinations of the above — QR must reject
    // them as dependent).
    b.add(
        EventName::cpu_q("FP_ARITH_INST_RETIRED", "SCALAR"),
        "All scalar FP arithmetic instructions",
        EventDomain::FloatingPoint,
        CpuBase::FpArith { prec: None, width: Some(VecWidth::Scalar) },
        1.0,
        exact,
    );
    for (wname, w) in widths {
        b.add(
            EventName::cpu_q("FP_ARITH_INST_RETIRED", format!("{wname}_ANY")),
            "All packed FP arithmetic instructions of this width",
            EventDomain::FloatingPoint,
            CpuBase::FpArith { prec: None, width: Some(w) },
            1.0,
            exact,
        );
    }
    b.add(
        EventName::cpu_q("FP_ARITH_INST_RETIRED", "ANY"),
        "All FP arithmetic instructions",
        EventDomain::FloatingPoint,
        CpuBase::FpArith { prec: None, width: None },
        1.0,
        exact,
    );
    for (pname, prec) in [("SINGLE", Precision::Single), ("DOUBLE", Precision::Double)] {
        b.add(
            EventName::cpu_q("FP_ARITH_INST_RETIRED", format!("ANY_{pname}")),
            "All FP arithmetic instructions of this precision",
            EventDomain::FloatingPoint,
            CpuBase::FpArith { prec: Some(prec), width: None },
            1.0,
            exact,
        );
    }

    // --- Retirement / cycles / uops. ---
    // Instruction counters carry a whisper of jitter (interrupt handling
    // retires extra instructions on real machines) — enough to land above
    // the paper's τ = 1e-10 and below everything else.
    b.add(
        EventName::cpu_q("INST_RETIRED", "ANY"),
        "Instructions retired",
        EventDomain::Other,
        CpuBase::Instructions,
        1.0,
        NoiseModel::Multiplicative { sigma: 1e-8 },
    );
    b.add(
        EventName::cpu_q("INST_RETIRED", "ANY_P"),
        "Instructions retired (programmable counter)",
        EventDomain::Other,
        CpuBase::Instructions,
        1.0,
        NoiseModel::Multiplicative { sigma: 2e-8 },
    );
    b.add(
        EventName::cpu_q("INST_RETIRED", "NOP"),
        "NOP instructions retired",
        EventDomain::Other,
        CpuBase::Nops,
        1.0,
        NoiseModel::Multiplicative { sigma: 1e-8 },
    );
    b.add(
        EventName::cpu_q("CPU_CLK_UNHALTED", "THREAD"),
        "Core cycles while the thread is unhalted",
        EventDomain::Cycles,
        CpuBase::Cycles,
        1.0,
        NoiseModel::Multiplicative { sigma: 2e-4 },
    );
    b.add(
        EventName::cpu_q("CPU_CLK_UNHALTED", "THREAD_P"),
        "Core cycles (programmable)",
        EventDomain::Cycles,
        CpuBase::Cycles,
        1.0,
        NoiseModel::Multiplicative { sigma: 3e-4 },
    );
    b.add(
        EventName::cpu_q("CPU_CLK_UNHALTED", "REF_TSC"),
        "Reference cycles at TSC rate",
        EventDomain::Cycles,
        CpuBase::Cycles,
        0.8,
        NoiseModel::Multiplicative { sigma: 5e-4 },
    );
    b.add(
        EventName::cpu_q("CPU_CLK_UNHALTED", "DISTRIBUTED"),
        "Cycles distributed across SMT threads",
        EventDomain::Cycles,
        CpuBase::Cycles,
        1.0,
        NoiseModel::Multiplicative { sigma: 1e-3 },
    );
    for (umask, scale, sigma) in [("ANY", 1.0, 1e-7), ("SLOTS", 1.0, 5e-7)] {
        b.add(
            EventName::cpu_q("UOPS_ISSUED", umask),
            "Micro-ops issued",
            EventDomain::Frontend,
            CpuBase::Uops,
            scale,
            NoiseModel::Multiplicative { sigma },
        );
    }
    b.add(
        EventName::cpu_q("UOPS_RETIRED", "SLOTS"),
        "Micro-ops retired",
        EventDomain::Frontend,
        CpuBase::Uops,
        1.0,
        NoiseModel::Multiplicative { sigma: 2e-7 },
    );
    b.add(
        EventName::cpu_q("UOPS_EXECUTED", "THREAD"),
        "Micro-ops executed",
        EventDomain::Frontend,
        CpuBase::Uops,
        1.02,
        NoiseModel::Multiplicative { sigma: 1e-5 },
    );

    // --- Integer ALU. ---
    b.add(
        EventName::cpu_q("INT_MISC", "ALL"),
        "Integer ALU instructions",
        EventDomain::Other,
        CpuBase::IntAll,
        1.0,
        exact,
    );
    for (i, umask) in ["ADD", "MUL", "CMP", "LOGIC"].iter().enumerate() {
        b.add(
            EventName::cpu_q("INT_ALU_RETIRED", *umask),
            "Integer ALU instructions of one class",
            EventDomain::Other,
            CpuBase::IntKind(i),
            1.0,
            exact,
        );
    }

    // --- Branches (all exact: architectural counts). ---
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "ALL_BRANCHES"),
        "All retired branch instructions",
        EventDomain::Branch,
        CpuBase::BrAll,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "COND"),
        "Retired conditional branches",
        EventDomain::Branch,
        CpuBase::BrCond,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "COND_TAKEN"),
        "Retired taken conditional branches",
        EventDomain::Branch,
        CpuBase::BrCondTaken,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "COND_NTAKEN"),
        "Retired not-taken conditional branches",
        EventDomain::Branch,
        CpuBase::BrCondNtaken,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "NEAR_CALL"),
        "Retired near calls",
        EventDomain::Branch,
        CpuBase::BrCall,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "NEAR_RETURN"),
        "Retired near returns",
        EventDomain::Branch,
        CpuBase::BrRet,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "NEAR_TAKEN"),
        "Retired taken branches",
        EventDomain::Branch,
        CpuBase::BrAllTaken,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_INST_RETIRED", "FAR_BRANCH"),
        "Retired far branches",
        EventDomain::Branch,
        CpuBase::Zero,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_MISP_RETIRED", "ALL_BRANCHES"),
        "All mispredicted retired branches",
        EventDomain::Branch,
        CpuBase::MispCond,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_MISP_RETIRED", "COND"),
        "Mispredicted conditional branches",
        EventDomain::Branch,
        CpuBase::MispCond,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_MISP_RETIRED", "COND_TAKEN"),
        "Mispredicted taken conditional branches",
        EventDomain::Branch,
        CpuBase::MispCondTaken,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("BR_MISP_RETIRED", "INDIRECT"),
        "Mispredicted indirect branches",
        EventDomain::Branch,
        CpuBase::Zero,
        1.0,
        exact,
    );

    // --- Memory / caches (the noisy family). ---
    b.add(
        EventName::cpu_q("MEM_INST_RETIRED", "ALL_LOADS"),
        "All retired load instructions (split loads replay and count twice)",
        EventDomain::Memory,
        CpuBase::Loads,
        1.006,
        NoiseModel::Multiplicative { sigma: 1e-6 },
    );
    b.add(
        EventName::cpu_q("MEM_INST_RETIRED", "ALL_STORES"),
        "All retired store instructions",
        EventDomain::Memory,
        CpuBase::Stores,
        1.0,
        NoiseModel::Multiplicative { sigma: 1e-6 },
    );
    b.add(
        EventName::cpu_q("MEM_INST_RETIRED", "ANY"),
        "All retired memory instructions",
        EventDomain::Memory,
        CpuBase::Loads,
        1.01,
        NoiseModel::Multiplicative { sigma: 2e-6 },
    );
    let cache_noise = |sigma: f64| NoiseModel::Multiplicative { sigma };
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "L1_HIT"),
        "Retired loads that hit the L1 data cache",
        EventDomain::Memory,
        CpuBase::L1Hit,
        1.0,
        cache_noise(1.5e-3),
    );
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "L1_MISS"),
        "Retired loads that missed the L1 data cache",
        EventDomain::Memory,
        CpuBase::L1Miss,
        1.0,
        cache_noise(3e-3),
    );
    // L2_HIT under-reports slightly: loads satisfied by fill-buffer
    // coalescing are not attributed to L2 (matching real-hardware caveats).
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "L2_HIT"),
        "Retired loads that hit L2",
        EventDomain::Memory,
        CpuBase::L2Hit,
        0.97,
        cache_noise(5e-3),
    );
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "L2_MISS"),
        "Retired loads that missed L2",
        EventDomain::Memory,
        CpuBase::L2Miss,
        1.02,
        cache_noise(6e-3),
    );
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "L3_HIT"),
        "Retired loads that hit L3",
        EventDomain::Memory,
        CpuBase::L3Hit,
        1.0,
        cache_noise(8e-3),
    );
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "L3_MISS"),
        "Retired loads that missed L3",
        EventDomain::Memory,
        CpuBase::L3Miss,
        1.02,
        cache_noise(1e-2),
    );
    b.add(
        EventName::cpu_q("MEM_LOAD_RETIRED", "FB_HIT"),
        "Retired loads that hit the fill buffer",
        EventDomain::Memory,
        CpuBase::L1Miss,
        0.02,
        NoiseModel::Multiplicative { sigma: 3e-1 },
    );
    b.add(
        EventName::cpu_q("L2_RQSTS", "DEMAND_DATA_RD_HIT"),
        "L2 demand data reads that hit",
        EventDomain::Memory,
        CpuBase::L2RqstsDemandRdHit,
        1.0,
        cache_noise(3e-3),
    );
    b.add(
        EventName::cpu_q("L2_RQSTS", "DEMAND_DATA_RD_MISS"),
        "L2 demand data reads that missed",
        EventDomain::Memory,
        CpuBase::L2RqstsDemandRdMiss,
        1.015,
        cache_noise(7e-3),
    );
    // ALL_DEMAND_DATA_RD over-counts slightly (includes L1 hardware
    // prefetcher requests that piggyback on the demand path).
    b.add(
        EventName::cpu_q("L2_RQSTS", "ALL_DEMAND_DATA_RD"),
        "All L2 demand data reads",
        EventDomain::Memory,
        CpuBase::L2RqstsAllDemandRd,
        1.03,
        cache_noise(6e-3),
    );
    b.add(
        EventName::cpu_q("L2_RQSTS", "RFO_HIT"),
        "L2 RFO requests that hit",
        EventDomain::Memory,
        CpuBase::L2RqstsRfoHit,
        1.0,
        cache_noise(1e-2),
    );
    b.add(
        EventName::cpu_q("L2_RQSTS", "RFO_MISS"),
        "L2 RFO requests that missed",
        EventDomain::Memory,
        CpuBase::L2RqstsRfoMiss,
        1.0,
        cache_noise(1e-2),
    );
    b.add(
        EventName::cpu_q("L2_RQSTS", "ALL_RFO"),
        "All L2 read-for-ownership requests (stores missing L1)",
        EventDomain::Memory,
        CpuBase::L2RqstsAllRfo,
        1.0,
        cache_noise(8e-3),
    );
    b.add(
        EventName::cpu_q("L2_RQSTS", "REFERENCES"),
        "All L2 requests",
        EventDomain::Memory,
        CpuBase::L2RqstsAllDemandRd,
        1.05,
        cache_noise(2e-2),
    );
    b.add(
        EventName::cpu_q("DTLB_LOAD_MISSES", "MISS_CAUSES_A_WALK"),
        "Load DTLB misses causing a page walk",
        EventDomain::Tlb,
        CpuBase::DtlbLoadMisses,
        1.0,
        cache_noise(4e-3),
    );
    b.add(
        EventName::cpu_q("DTLB_LOAD_MISSES", "WALK_COMPLETED"),
        "Completed page walks for loads",
        EventDomain::Tlb,
        CpuBase::DtlbLoadMisses,
        1.0,
        cache_noise(5e-3),
    );
    b.add(
        EventName::cpu_q("DTLB_LOAD_MISSES", "STLB_HIT"),
        "Load translations hitting the STLB",
        EventDomain::Tlb,
        CpuBase::DtlbLoadMisses,
        0.3,
        cache_noise(8e-2),
    );

    // --- Generated families: frontend / backend activity (cycle-scaled,
    //     noisy) — correlate with work but match no expectation pattern. ---
    for (i, umask) in [
        "DSB_UOPS",
        "MITE_UOPS",
        "MS_UOPS",
        "DSB_CYCLES_ANY",
        "MITE_CYCLES_ANY",
        "MS_SWITCHES",
        "BUBBLES_CORE",
        "BUBBLES_CYCLES",
    ]
    .iter()
    .enumerate()
    {
        b.add(
            EventName::cpu_q("IDQ", *umask),
            "Instruction decode queue delivery",
            EventDomain::Frontend,
            CpuBase::Uops,
            0.2 + 0.1 * i as f64,
            NoiseModel::Multiplicative { sigma: 1e-4 * (i + 1) as f64 },
        );
    }
    for (i, umask) in [
        "STALLS_TOTAL",
        "STALLS_L1D_MISS",
        "STALLS_L2_MISS",
        "STALLS_L3_MISS",
        "STALLS_MEM_ANY",
        "CYCLES_MEM_ANY",
    ]
    .iter()
    .enumerate()
    {
        b.add(
            EventName::cpu_q("CYCLE_ACTIVITY", *umask),
            "Stall cycle accounting",
            EventDomain::Cycles,
            CpuBase::Cycles,
            0.05 + 0.05 * i as f64,
            NoiseModel::Multiplicative { sigma: 5e-3 },
        );
    }
    for (i, umask) in [
        "1_PORTS_UTIL",
        "2_PORTS_UTIL",
        "3_PORTS_UTIL",
        "4_PORTS_UTIL",
        "BOUND_ON_LOADS",
        "BOUND_ON_STORES",
    ]
    .iter()
    .enumerate()
    {
        b.add(
            EventName::cpu_q("EXE_ACTIVITY", *umask),
            "Execution port utilization",
            EventDomain::Cycles,
            CpuBase::Cycles,
            0.1 + 0.08 * i as f64,
            NoiseModel::Multiplicative { sigma: 2e-3 },
        );
    }
    for umask in ["HIT", "MISS", "IFETCH_STALL", "TAG_STALL"] {
        b.add(
            EventName::cpu_q("ICACHE", umask),
            "Instruction cache activity",
            EventDomain::Frontend,
            CpuBase::Instructions,
            0.01,
            NoiseModel::Multiplicative { sigma: 5e-2 },
        );
    }
    for (i, umask) in
        ["DRAM_BW_USE", "L3_MISS_DEMAND", "DATA_RD", "ALL_REQUESTS"].iter().enumerate()
    {
        b.add(
            EventName::cpu_q("OFFCORE_REQUESTS", *umask),
            "Offcore request traffic",
            EventDomain::Uncore,
            CpuBase::L3Miss,
            1.0 + 0.2 * i as f64,
            NoiseModel::Multiplicative { sigma: 1.3e-1 },
        );
    }
    // OFFCORE_RESPONSE matrix: request x response combinations.
    for req in ["DMND_DATA_RD", "DMND_RFO", "PF_L2_DATA_RD", "STREAMING_WR"] {
        for rsp in ["L3_HIT", "L3_MISS", "DRAM", "ANY_RESPONSE"] {
            let base = match rsp {
                "L3_HIT" => CpuBase::L3Hit,
                _ => CpuBase::L3Miss,
            };
            b.add(
                EventName::cpu_q("OFFCORE_RESPONSE", format!("{req}.{rsp}")),
                "Offcore response matrix event",
                EventDomain::Uncore,
                if req == "DMND_DATA_RD" { base } else { CpuBase::Zero },
                0.9,
                NoiseModel::Multiplicative { sigma: 1.2e-1 },
            );
        }
    }
    // Divider / assists: zero on CAT kernels.
    for (name, umask) in [
        ("ARITH", "DIV_ACTIVE"),
        ("ARITH", "FPDIV_ACTIVE"),
        ("ASSISTS", "FP"),
        ("ASSISTS", "ANY"),
        ("MISC_RETIRED", "LBR_INSERTS"),
        ("MISC_RETIRED", "PAUSE_INST"),
    ] {
        b.add(
            EventName::cpu_q(name, umask),
            "Rare-path activity",
            EventDomain::Other,
            CpuBase::Zero,
            1.0,
            exact,
        );
    }

    // Frontend retirement latency tags: tiny uops-scaled fractions.
    for (i, umask) in [
        "LATENCY_GE_1",
        "LATENCY_GE_2",
        "LATENCY_GE_4",
        "LATENCY_GE_8",
        "LATENCY_GE_16",
        "LATENCY_GE_32",
        "DSB_MISS",
        "ITLB_MISS",
    ]
    .iter()
    .enumerate()
    {
        b.add(
            EventName::cpu_q("FRONTEND_RETIRED", *umask),
            "Retirement tagged by frontend delivery latency",
            EventDomain::Frontend,
            CpuBase::Uops,
            0.01 + 0.012 * i as f64,
            NoiseModel::Multiplicative { sigma: 3e-3 },
        );
    }
    // Loop stream detector.
    for (umask, scale) in [("UOPS", 0.5), ("CYCLES_ACTIVE", 0.12), ("CYCLES_OK", 0.1)] {
        b.add(
            EventName::cpu_q("LSD", umask),
            "Loop stream detector delivery",
            EventDomain::Frontend,
            CpuBase::Uops,
            scale,
            NoiseModel::Multiplicative { sigma: 1e-4 },
        );
    }
    // Machine clears: rare background occurrences.
    for umask in ["COUNT", "MEMORY_ORDERING", "SMC", "DISAMBIGUATION"] {
        b.add(
            EventName::cpu_q("MACHINE_CLEARS", umask),
            "Pipeline machine clears",
            EventDomain::Other,
            CpuBase::Zero,
            1.0,
            NoiseModel::Additive { scale: 0.8 },
        );
    }
    // Topdown slot accounting: cycle/uop-scaled with moderate noise.
    for (i, umask) in [
        "SLOTS",
        "BACKEND_BOUND_SLOTS",
        "BAD_SPEC_SLOTS",
        "BR_MISPREDICT_SLOTS",
        "FRONTEND_BOUND_SLOTS",
        "HEAVY_OPERATIONS",
        "LIGHT_OPERATIONS",
        "RETIRING_SLOTS",
    ]
    .iter()
    .enumerate()
    {
        b.add(
            EventName::cpu_q("TOPDOWN", *umask),
            "Topdown pipeline-slot accounting",
            EventDomain::Cycles,
            CpuBase::Cycles,
            0.5 + 0.55 * i as f64,
            NoiseModel::Multiplicative { sigma: 1e-3 * (1 + i) as f64 },
        );
    }
    // L3-miss retirement attribution: local vs remote memory.
    b.add(
        EventName::cpu_q("MEM_LOAD_L3_MISS_RETIRED", "LOCAL_DRAM"),
        "Retired loads served from local DRAM",
        EventDomain::Memory,
        CpuBase::L3Miss,
        0.98,
        cache_noise(2e-2),
    );
    for umask in ["REMOTE_DRAM", "REMOTE_FWD", "REMOTE_HITM"] {
        b.add(
            EventName::cpu_q("MEM_LOAD_L3_MISS_RETIRED", umask),
            "Retired loads served from a remote socket (idle here)",
            EventDomain::Memory,
            CpuBase::Zero,
            1.0,
            NoiseModel::Additive { scale: 0.3 },
        );
    }
    // Software prefetch instructions: none in these kernels.
    for umask in ["NTA", "T0", "T1_T2", "PREFETCHW"] {
        b.add(
            EventName::cpu_q("SW_PREFETCH_ACCESS", umask),
            "Software prefetch instructions retired",
            EventDomain::Memory,
            CpuBase::Zero,
            1.0,
            exact,
        );
    }
    // Page-walker fill attribution: fractions of the walk count.
    for (umask, frac) in
        [("DTLB_L1_HIT", 0.55), ("DTLB_L2_HIT", 0.3), ("DTLB_L3_HIT", 0.1), ("DTLB_MEMORY", 0.05)]
    {
        b.add(
            EventName::cpu_q("PAGE_WALKER_LOADS", umask),
            "Page-walker accesses by supplying level",
            EventDomain::Tlb,
            CpuBase::DtlbLoadMisses,
            frac,
            cache_noise(1.5e-2),
        );
    }
    // Turbo license / core power states: cycle-correlated, noisy.
    for (i, umask) in
        ["LVL0_TURBO_LICENSE", "LVL1_TURBO_LICENSE", "LVL2_TURBO_LICENSE"].iter().enumerate()
    {
        b.add(
            EventName::cpu_q("CORE_POWER", *umask),
            "Cycles under a turbo license level",
            EventDomain::Cycles,
            CpuBase::Cycles,
            0.9 - 0.3 * i as f64,
            NoiseModel::Multiplicative { sigma: 3e-2 },
        );
    }
    // Decode-pipeline switch counts.
    for umask in ["COUNT", "PENALTY_CYCLES"] {
        b.add(
            EventName::cpu_q("DSB2MITE_SWITCHES", umask),
            "DSB-to-MITE switch activity",
            EventDomain::Frontend,
            CpuBase::Uops,
            0.003,
            NoiseModel::Multiplicative { sigma: 8e-2 },
        );
    }

    // --- Uncore: unrelated to any core workload (noisy cluster). ---
    for box_id in 0..4 {
        for (i, base_name) in [
            "UNC_CHA_CLOCKTICKS",
            "UNC_CHA_LLC_LOOKUP",
            "UNC_CHA_DIR_UPDATE",
            "UNC_CHA_SF_EVICTION",
            "UNC_CHA_TOR_INSERTS",
            "UNC_CHA_TOR_OCCUPANCY",
        ]
        .iter()
        .enumerate()
        {
            b.add(
                EventName::cpu(*base_name).with_qualifier(catalyze_events::Qualifier::with_value(
                    "unit",
                    box_id.to_string(),
                )),
                "Caching/home agent activity (uncore)",
                EventDomain::Uncore,
                CpuBase::Zero,
                1.0,
                NoiseModel::Unrelated {
                    mean: 1e6 * (1.0 + i as f64),
                    spread: 0.02 * (1 + box_id) as f64,
                },
            );
        }
    }
    for chan in 0..4 {
        for base_name in [
            "UNC_IMC_CAS_COUNT_RD",
            "UNC_IMC_CAS_COUNT_WR",
            "UNC_IMC_ACT_COUNT",
            "UNC_IMC_PRE_COUNT",
        ] {
            b.add(
                EventName::cpu(base_name).with_qualifier(catalyze_events::Qualifier::with_value(
                    "chan",
                    chan.to_string(),
                )),
                "Integrated memory controller activity (uncore)",
                EventDomain::Uncore,
                CpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean: 5e5 + 1e5 * chan as f64, spread: 0.05 },
            );
        }
    }
    // Mesh-to-memory and UPI link traffic: background only.
    for chan in 0..4 {
        for base_name in ["UNC_M2M_IMC_READS", "UNC_M2M_IMC_WRITES", "UNC_M2M_DIRECTORY_HIT"] {
            b.add(
                EventName::cpu(base_name).with_qualifier(catalyze_events::Qualifier::with_value(
                    "chan",
                    chan.to_string(),
                )),
                "Mesh-to-memory traffic (uncore)",
                EventDomain::Uncore,
                CpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean: 2e5 + 3e4 * chan as f64, spread: 0.08 },
            );
        }
    }
    for link in 0..3 {
        for base_name in ["UNC_UPI_TXL_FLITS", "UNC_UPI_RXL_FLITS", "UNC_UPI_CLOCKTICKS"] {
            b.add(
                EventName::cpu(base_name).with_qualifier(catalyze_events::Qualifier::with_value(
                    "link",
                    link.to_string(),
                )),
                "UPI cross-socket link traffic (uncore)",
                EventDomain::Uncore,
                CpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean: 1e4 * (link + 1) as f64, spread: 0.15 },
            );
        }
    }
    // Power / thermal: pure background.
    for (name, mean, spread) in [
        ("RAPL_PKG_ENERGY", 1e4, 0.03),
        ("RAPL_DRAM_ENERGY", 4e3, 0.05),
        ("THERMAL_MARGIN", 40.0, 0.08),
        ("FREQ_THROTTLE_CYCLES", 100.0, 1.0),
        ("SMI_COUNT", 0.5, 2.0),
        ("C6_RESIDENCY", 1e3, 0.5),
    ] {
        b.add(
            EventName::cpu(name),
            "Package-level background telemetry",
            EventDomain::Software,
            CpuBase::Zero,
            1.0,
            NoiseModel::Unrelated { mean, spread },
        );
    }
    // Software / OS events: jitter that scales with nothing.
    for (name, mean, spread) in [
        ("sde:::PAGE_FAULTS", 2.0, 0.8),
        ("sde:::CONTEXT_SWITCHES", 1.0, 1.2),
        ("sde:::MIGRATIONS", 0.2, 2.0),
        ("sde:::SOFT_IRQS", 10.0, 0.6),
    ] {
        // lint: allow(panic, reachable_panic): static event-name literals parse
        let n: EventName = name.parse().expect("static name");
        b.add(
            n,
            "Software-defined OS event",
            EventDomain::Software,
            CpuBase::Zero,
            1.0,
            NoiseModel::Unrelated { mean, spread },
        );
    }
    // Additive-jitter variants of memory events: hybrid noise sources.
    for (i, umask) in
        ["LOCK_LOADS", "SPLIT_LOADS", "SPLIT_STORES", "STLB_MISS_LOADS", "STLB_MISS_STORES"]
            .iter()
            .enumerate()
    {
        b.add(
            EventName::cpu_q("MEM_INST_RETIRED", *umask),
            "Irregular memory instruction subset",
            EventDomain::Memory,
            CpuBase::Zero,
            1.0,
            NoiseModel::Additive { scale: 0.5 + i as f64 },
        );
    }

    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CoreConfig, Cpu};
    use crate::isa::{FpKind, Instruction};
    use crate::program::{Block, Program};

    #[test]
    fn catalog_size_is_substantial() {
        let set = sapphire_rapids_like();
        assert!(set.len() >= 150, "got {} events", set.len());
        assert_eq!(set.catalog().len(), set.len());
        assert!(!set.is_empty());
    }

    #[test]
    fn no_dedicated_fma_event_exists() {
        let set = sapphire_rapids_like();
        for (_, def) in set.iter() {
            let name = def.info.name.to_string();
            assert!(!name.contains("FMA"), "SPR-like set must not expose an FMA event: {name}");
        }
    }

    #[test]
    fn key_events_present() {
        let set = sapphire_rapids_like();
        for name in [
            "FP_ARITH_INST_RETIRED:SCALAR_SINGLE",
            "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE",
            "BR_INST_RETIRED:ALL_BRANCHES",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_MISP_RETIRED:ALL_BRANCHES",
            "MEM_LOAD_RETIRED:L1_HIT",
            "MEM_LOAD_RETIRED:L1_MISS",
            "MEM_LOAD_RETIRED:L3_HIT",
            "L2_RQSTS:DEMAND_DATA_RD_HIT",
        ] {
            assert!(set.id_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn fp_events_count_fma_twice() {
        let set = sapphire_rapids_like();
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let block = Block::new()
            .repeat(Instruction::fp(Precision::Double, VecWidth::V256, FpKind::Fma), 12);
        cpu.run(&Program::new().bare_loop(block, 1));
        let stats = cpu.stats();
        let id = set.id_of("FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE").unwrap();
        assert_eq!(set.true_count(id, &stats), Some(24.0));
        let any = set.id_of("FP_ARITH_INST_RETIRED:ANY").unwrap();
        assert_eq!(set.true_count(any, &stats), Some(24.0));
        let sp = set.id_of("FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE").unwrap();
        assert_eq!(set.true_count(sp, &stats), Some(0.0));
    }

    #[test]
    fn architectural_events_are_noise_free() {
        let set = sapphire_rapids_like();
        for name in ["FP_ARITH_INST_RETIRED:SCALAR_DOUBLE", "BR_INST_RETIRED:COND"] {
            let id = set.id_of(name).unwrap();
            assert!(set.def(id).unwrap().noise.is_exact(), "{name} must be exact");
        }
        for name in ["CPU_CLK_UNHALTED:THREAD", "MEM_LOAD_RETIRED:L1_HIT", "INST_RETIRED:ANY"] {
            let id = set.id_of(name).unwrap();
            assert!(!set.def(id).unwrap().noise.is_exact(), "{name} must be noisy");
        }
    }

    #[test]
    fn uncore_events_unrelated() {
        let set = sapphire_rapids_like();
        let mut found = 0;
        for (_, def) in set.iter() {
            if matches!(def.noise, NoiseModel::Unrelated { .. }) {
                found += 1;
                assert_eq!(
                    def.base.eval(&ExecStats::default()),
                    0.0,
                    "unrelated events carry Zero base"
                );
            }
        }
        assert!(found >= 30, "expect a large unrelated tail, got {found}");
    }

    #[test]
    fn eval_covers_every_base() {
        // Smoke-check that eval is total over a default stats value.
        let s = ExecStats::default();
        for base in [
            CpuBase::Instructions,
            CpuBase::Cycles,
            CpuBase::Uops,
            CpuBase::IntAll,
            CpuBase::IntKind(2),
            CpuBase::BrAll,
            CpuBase::BrCondNtaken,
            CpuBase::BrUncond,
            CpuBase::BrCall,
            CpuBase::BrRet,
            CpuBase::BrAllTaken,
            CpuBase::MispCondTaken,
            CpuBase::Loads,
            CpuBase::Stores,
            CpuBase::L1Hit,
            CpuBase::L2Miss,
            CpuBase::L3Hit,
            CpuBase::L3Miss,
            CpuBase::L2RqstsRfoHit,
            CpuBase::L2RqstsRfoMiss,
            CpuBase::DtlbLoadMisses,
            CpuBase::DtlbLoadHits,
            CpuBase::Nops,
            CpuBase::Zero,
        ] {
            assert_eq!(base.eval(&s), 0.0);
        }
    }
}
