//! Memoized kernel traces: record a program's deterministic instruction
//! stream once, replay it cheaply many times.
//!
//! Every CAT kernel is a counted loop whose body retires the *same*
//! dynamic stream on every iteration — the programs are deterministic by
//! construction (no data-dependent control flow). [`KernelTrace::record`]
//! exploits that: it walks each top-level item **once**, flattening a
//! single iteration into
//!
//! * analytic per-iteration retirement counts ([`BodyCounts`]) for every
//!   unit whose statistics don't depend on mutable state (FP/integer/nop
//!   retirement, uop expansion, forced-outcome branch verdicts), and
//! * the stateful residue that must actually be re-executed: the ordered
//!   memory-access stream (coalesced into same-kind [`MemRun`]s) and, when
//!   any branch consults the real predictor, the ordered conditional
//!   branches.
//!
//! [`crate::cpu::Cpu::replay`] then multiplies the analytic counts by the
//! trip count and re-drives only the TLB/cache/predictor state machines,
//! producing [`crate::cpu::ExecStats`] bit-identical to direct
//! [`crate::cpu::Cpu::run`] execution (pinned by this module's tests and
//! the cross-crate parity suites). Replay is where the measurement sweeps
//! spend their time, so the hot loops run over dense address arrays
//! instead of re-walking program structure per instruction.
//!
//! Memoization keying is the caller's job: a trace is valid for exactly
//! the `(program structure, address stream)` it recorded, so runners key
//! traces by the kernel parameters that generated the program (sweep
//! point, seed, pass count — see `replay_passes` for the one exception:
//! a top-level counted loop's trip count may be overridden at replay
//! time, which is how one recording serves both warmup and measurement).

use crate::cache::AccessKind;
use crate::cpu::fp_index;
use crate::isa::{CondBranch, Instruction, IntKind};
use crate::program::{Item, Program};

/// Per-iteration retirement counts of one segment's body — everything
/// about an iteration that does not depend on mutable hardware state.
///
/// The branch fields hold the *forced-outcome* analytic tallies; they are
/// only meaningful when the owning segment's `needs_predictor` is false
/// (otherwise every conditional branch is replayed through the live
/// predictor and these fields are ignored).
#[derive(Debug, Clone, Default)]
pub(crate) struct BodyCounts {
    /// FP retirements per `(precision, width, kind)` class (dense grid).
    pub(crate) fp: Vec<u64>,
    /// Integer retirements per kind (Add, Mul, Cmp, Logic).
    pub(crate) int_ops: [u64; 4],
    /// Loads retired.
    pub(crate) loads: u64,
    /// Stores retired.
    pub(crate) stores: u64,
    /// No-ops retired.
    pub(crate) nops: u64,
    /// Unconditional direct branches retired.
    pub(crate) uncond: u64,
    /// Calls retired.
    pub(crate) calls: u64,
    /// Returns retired.
    pub(crate) rets: u64,
    /// All instructions retired.
    pub(crate) instructions: u64,
    /// Micro-ops issued.
    pub(crate) uops: u64,
    /// Conditional branches retired (forced-outcome analytic tally).
    pub(crate) cond_retired: u64,
    /// ... of which taken.
    pub(crate) cond_taken: u64,
    /// ... of which not taken.
    pub(crate) cond_not_taken: u64,
    /// ... of which mispredicted (forced verdicts are state-independent).
    pub(crate) mispredicted: u64,
    /// ... mispredicted *and* taken.
    pub(crate) mispredicted_taken: u64,
}

/// A maximal run of same-kind memory accesses, in stream order.
#[derive(Debug, Clone)]
pub(crate) struct MemRun {
    /// Load or store.
    pub(crate) kind: AccessKind,
    /// Virtual addresses, in access order.
    pub(crate) addrs: Vec<u64>,
}

/// One top-level program item, flattened: a single recorded iteration
/// plus the trip count to replay it at.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    /// Trip count recorded from the program (1 for straight-line blocks).
    pub(crate) trips: u64,
    /// Whether this segment came from a top-level loop (and its trip count
    /// may therefore be overridden by `Cpu::replay_passes`).
    pub(crate) looped: bool,
    /// Whether the loop synthesizes counted-loop control overhead.
    pub(crate) overhead: bool,
    /// Predictor site of the synthesized back-edge branch.
    pub(crate) site: u32,
    /// Analytic per-iteration counts (body only; overhead is added
    /// separately at replay).
    pub(crate) counts: BodyCounts,
    /// Ordered per-iteration memory stream, coalesced by access kind.
    pub(crate) mem: Vec<MemRun>,
    /// Ordered per-iteration conditional branches (body only). Replayed
    /// through the live predictor iff `needs_predictor`.
    pub(crate) cond: Vec<CondBranch>,
    /// True when any body branch leaves its verdict to the predictor, in
    /// which case branch state/statistics cannot be computed analytically.
    pub(crate) needs_predictor: bool,
}

/// A recorded kernel: the compact, replayable form of a [`Program`].
#[derive(Debug, Clone)]
pub struct KernelTrace {
    /// One segment per top-level program item, in order.
    pub(crate) segments: Vec<Segment>,
}

impl KernelTrace {
    /// Records `program` by walking each top-level item once.
    pub fn record(program: &Program) -> Self {
        Self { segments: program.items.iter().map(Segment::record).collect() }
    }

    /// Dynamic instructions one replay retires (matches
    /// [`Program::dynamic_length`] for the recorded trip counts).
    pub fn dynamic_length(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| (s.counts.instructions + if s.overhead { 3 } else { 0 }) * s.trips)
            .sum()
    }
}

impl Segment {
    fn record(item: &Item) -> Self {
        let (trips, looped, overhead, site, unit): (u64, bool, bool, u32, &[Item]) = match item {
            Item::Block(_) => (1, false, false, 0, std::slice::from_ref(item)),
            Item::Loop { body, trips, overhead, site } => {
                (*trips, true, *overhead, *site, body.as_slice())
            }
        };
        let mut seg = Segment {
            trips,
            looped,
            overhead,
            site,
            counts: BodyCounts { fp: vec![0; 3 * 4 * 6], ..BodyCounts::default() },
            mem: Vec::new(),
            cond: Vec::new(),
            needs_predictor: false,
        };
        // One iteration of the body: nested loops are fully unrolled here
        // (their per-iteration stream repeats identically across outer
        // iterations, including nested back-edge taken/fall-through flags).
        for sub in unit {
            crate::program::visit_item(sub, &mut |i| seg.absorb(i));
        }
        seg
    }

    fn absorb(&mut self, i: Instruction) {
        let c = &mut self.counts;
        c.instructions += 1;
        match i {
            Instruction::Fp { prec, width, kind } => {
                c.fp[fp_index(prec, width, kind)] += 1;
                c.uops += 1;
            }
            Instruction::Int(kind) => {
                let idx = match kind {
                    IntKind::Add => 0,
                    IntKind::Mul => 1,
                    IntKind::Cmp => 2,
                    IntKind::Logic => 3,
                };
                c.int_ops[idx] += 1;
                c.uops += 1;
            }
            Instruction::Load { addr, .. } => {
                c.loads += 1;
                c.uops += 1;
                self.push_mem(AccessKind::Read, addr);
            }
            Instruction::Store { addr, .. } => {
                c.stores += 1;
                c.uops += 2; // store address + store data
                self.push_mem(AccessKind::Write, addr);
            }
            Instruction::CondBranch(cb) => {
                c.uops += 1;
                self.cond.push(cb);
                match cb.forced_mispredict {
                    None => self.needs_predictor = true,
                    Some(mispredict) => {
                        c.cond_retired += 1;
                        if cb.taken {
                            c.cond_taken += 1;
                        } else {
                            c.cond_not_taken += 1;
                        }
                        if mispredict {
                            c.mispredicted += 1;
                            if cb.taken {
                                c.mispredicted_taken += 1;
                            }
                        }
                    }
                }
            }
            Instruction::UncondBranch => {
                c.uncond += 1;
                c.uops += 1;
            }
            Instruction::Call => {
                c.calls += 1;
                c.uops += 2;
            }
            Instruction::Ret => {
                c.rets += 1;
                c.uops += 1;
            }
            Instruction::Nop => {
                c.nops += 1;
                c.uops += 1;
            }
        }
    }

    fn push_mem(&mut self, kind: AccessKind, addr: u64) {
        match self.mem.last_mut() {
            Some(run) if run.kind == kind => run.addrs.push(addr),
            _ => self.mem.push(MemRun { kind, addrs: vec![addr] }),
        }
    }

    #[cfg(test)]
    fn body_instructions(&self) -> u64 {
        self.counts.instructions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{FpKind, Precision, VecWidth};
    use crate::program::Block;

    fn fp() -> Instruction {
        Instruction::fp(Precision::Double, VecWidth::Scalar, FpKind::Add)
    }

    #[test]
    fn records_one_iteration_per_segment() {
        let p = Program::new().counted_loop(Block::new().repeat(fp(), 24), 10, 0);
        let t = KernelTrace::record(&p);
        assert_eq!(t.segments.len(), 1);
        let s = &t.segments[0];
        assert_eq!(s.trips, 10);
        assert!(s.overhead && s.looped);
        assert_eq!(s.body_instructions(), 24);
        assert_eq!(t.dynamic_length(), p.dynamic_length());
    }

    #[test]
    fn straight_line_block_is_a_single_trip_segment() {
        let p = Program::new().item(Item::Block(Block::new().repeat(Instruction::Nop, 5)));
        let t = KernelTrace::record(&p);
        assert_eq!(t.segments[0].trips, 1);
        assert!(!t.segments[0].looped);
        assert_eq!(t.dynamic_length(), 5);
    }

    #[test]
    fn memory_stream_coalesces_same_kind_runs() {
        let b = Block::new()
            .push(Instruction::Load { addr: 0, size: 8 })
            .push(Instruction::Load { addr: 64, size: 8 })
            .push(Instruction::Store { addr: 128, size: 8 })
            .push(Instruction::Load { addr: 192, size: 8 });
        let t = KernelTrace::record(&Program::new().bare_loop(b, 2));
        let s = &t.segments[0];
        assert_eq!(s.mem.len(), 3, "load run / store run / load run");
        assert_eq!(s.mem[0].addrs, vec![0, 64]);
        assert_eq!(s.mem[1].addrs, vec![128]);
        assert_eq!(s.mem[2].addrs, vec![192]);
        assert_eq!(s.counts.loads, 3);
        assert_eq!(s.counts.stores, 1);
    }

    #[test]
    fn predictor_branches_flip_needs_predictor() {
        let forced = Block::new().push(Instruction::cond_forced(1, true, false));
        let live = Block::new().push(Instruction::cond(1, true));
        let tf = KernelTrace::record(&Program::new().bare_loop(forced, 4));
        let tl = KernelTrace::record(&Program::new().bare_loop(live, 4));
        assert!(!tf.segments[0].needs_predictor);
        assert_eq!(tf.segments[0].counts.cond_retired, 1);
        assert!(tl.segments[0].needs_predictor);
        assert_eq!(tl.segments[0].cond.len(), 1);
    }

    #[test]
    fn nested_loops_unroll_into_the_body() {
        let inner = Item::Loop {
            body: vec![Item::Block(Block::new().push(fp()))],
            trips: 4,
            overhead: true,
            site: 1,
        };
        let p = Program::new().item(Item::Loop {
            body: vec![inner],
            trips: 2,
            overhead: true,
            site: 0,
        });
        let t = KernelTrace::record(&p);
        let s = &t.segments[0];
        // Inner loop unrolled: 4 x (fp + add + cmp + branch) = 16 per outer
        // iteration; the outer overhead is synthesized at replay time.
        assert_eq!(s.body_instructions(), 16);
        assert_eq!(s.counts.cond_retired, 4, "nested back-edges are forced");
        assert_eq!(s.counts.cond_taken, 3);
        assert_eq!(t.dynamic_length(), p.dynamic_length());
    }
}
