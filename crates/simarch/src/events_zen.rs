//! A second CPU event inventory, modeled on AMD Zen-family cores — the
//! portability half of the paper's premise: "as a user transitions from one
//! architecture to another, the mapping between raw performance events and
//! the concepts they measure becomes increasingly ambiguous".
//!
//! Semantics that differ from the Sapphire-Rapids-like inventory in exactly
//! the ways the paper calls out (§III-B: "several AMD processors do not
//! offer different events for strictly single-precision, or strictly
//! double-precision instructions"):
//!
//! * the FP counters (`RETIRED_SSE_AVX_FLOPS:*`) count **operations**, not
//!   instructions, split by operation class (add/sub, multiply, div/sqrt,
//!   MAC) but **merged across precisions** — so SP-only or DP-only metrics
//!   are *not composable* on this machine, while total-FLOPs metrics are;
//! * the branch family (`EX_RET_*`) has no direct taken-conditional or
//!   not-taken event; those metrics require three-event combinations;
//! * cache events use AMD naming (`LS_*`, `L2_CACHE_*`) with the same
//!   underlying hit/miss semantics.

use crate::events_cpu::{CpuBase, CpuEventDef, CpuEventSet};
use crate::noise::NoiseModel;
use catalyze_events::{EventCatalog, EventDomain, EventInfo, EventName};

struct Builder {
    catalog: EventCatalog,
    defs: Vec<CpuEventDef>,
}

impl Builder {
    fn add(
        &mut self,
        name: EventName,
        desc: &str,
        domain: EventDomain,
        base: CpuBase,
        scale: f64,
        noise: NoiseModel,
    ) {
        let info = EventInfo { name, description: desc.to_string(), domain };
        // lint: allow(panic, reachable_panic): the builder inserts a static, duplicate-free inventory
        self.catalog.add(info.clone()).expect("duplicate zen event");
        self.defs.push(CpuEventDef { info, base, scale, noise });
    }
}

/// Builds the Zen-like event inventory (~120 events).
pub fn zen_like() -> CpuEventSet {
    let mut b = Builder { catalog: EventCatalog::new(), defs: Vec::new() };
    let exact = NoiseModel::None;

    // --- Floating point: operation counters, no precision split. ---
    b.add(
        EventName::cpu_q("RETIRED_SSE_AVX_FLOPS", "ADD_SUB_FLOPS"),
        "Add/subtract FP operations retired (all precisions)",
        EventDomain::FloatingPoint,
        CpuBase::FpOpsAddSub,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("RETIRED_SSE_AVX_FLOPS", "MULT_FLOPS"),
        "Multiply FP operations retired (all precisions)",
        EventDomain::FloatingPoint,
        CpuBase::FpOpsMul,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("RETIRED_SSE_AVX_FLOPS", "DIV_FLT_FLOPS"),
        "Divide/sqrt FP operations retired (all precisions)",
        EventDomain::FloatingPoint,
        CpuBase::FpOpsDivSqrt,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("RETIRED_SSE_AVX_FLOPS", "MAC_FLOPS"),
        "Multiply-accumulate FP operations retired (two per MAC, all precisions)",
        EventDomain::FloatingPoint,
        CpuBase::FpOpsMac,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu_q("RETIRED_SSE_AVX_FLOPS", "ANY"),
        "All FP operations retired",
        EventDomain::FloatingPoint,
        CpuBase::FpOpsAny,
        1.0,
        exact,
    );

    // --- Branching: no direct taken-conditional event. ---
    b.add(
        EventName::cpu("EX_RET_BRN"),
        "All retired branches",
        EventDomain::Branch,
        CpuBase::BrAll,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_BRN_TKN"),
        "All retired taken branches",
        EventDomain::Branch,
        CpuBase::BrAllTaken,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_COND"),
        "Retired conditional branches",
        EventDomain::Branch,
        CpuBase::BrCond,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_BRN_MISP"),
        "Retired mispredicted branches",
        EventDomain::Branch,
        CpuBase::MispCond,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_COND_MISP"),
        "Retired mispredicted conditional branches",
        EventDomain::Branch,
        CpuBase::MispCond,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_NEAR_RET"),
        "Retired near returns",
        EventDomain::Branch,
        CpuBase::BrRet,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_BRN_FAR"),
        "Retired far branches",
        EventDomain::Branch,
        CpuBase::Zero,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_BRN_IND_MISP"),
        "Retired mispredicted indirect branches",
        EventDomain::Branch,
        CpuBase::Zero,
        1.0,
        exact,
    );
    b.add(
        EventName::cpu("EX_RET_MSPRD_BRNCH_INSTR_DIR_MSMTCH"),
        "Mispredicted direction mismatches",
        EventDomain::Branch,
        CpuBase::MispCond,
        1.0,
        exact,
    );

    // --- Retirement / cycles / uops. ---
    b.add(
        EventName::cpu("EX_RET_INSTR"),
        "Instructions retired",
        EventDomain::Other,
        CpuBase::Instructions,
        1.0,
        NoiseModel::Multiplicative { sigma: 1.5e-8 },
    );
    b.add(
        EventName::cpu("EX_RET_OPS"),
        "Macro-ops retired",
        EventDomain::Other,
        CpuBase::Uops,
        1.0,
        NoiseModel::Multiplicative { sigma: 3e-7 },
    );
    b.add(
        EventName::cpu_q("LS_NOT_HALTED_CYC", "ALL"),
        "Core cycles not halted",
        EventDomain::Cycles,
        CpuBase::Cycles,
        1.0,
        NoiseModel::Multiplicative { sigma: 3e-4 },
    );
    b.add(
        EventName::cpu("APERF"),
        "Actual performance clock",
        EventDomain::Cycles,
        CpuBase::Cycles,
        1.0,
        NoiseModel::Multiplicative { sigma: 6e-4 },
    );
    b.add(
        EventName::cpu("MPERF"),
        "Maximum performance clock",
        EventDomain::Cycles,
        CpuBase::Cycles,
        0.85,
        NoiseModel::Multiplicative { sigma: 5e-4 },
    );
    b.add(
        EventName::cpu_q("DE_SRC_OP_DISP", "ALL"),
        "Dispatched ops",
        EventDomain::Frontend,
        CpuBase::Uops,
        1.05,
        NoiseModel::Multiplicative { sigma: 2e-5 },
    );

    // --- Memory / caches (AMD naming). ---
    let cache = |sigma: f64| NoiseModel::Multiplicative { sigma };
    b.finish_memory(cache)
}

impl Builder {
    fn finish_memory(mut self, cache: impl Fn(f64) -> NoiseModel) -> CpuEventSet {
        let exact = NoiseModel::None;
        self.add(
            EventName::cpu_q("LS_DISPATCH", "LD_DISPATCH"),
            "Load uops dispatched",
            EventDomain::Memory,
            CpuBase::Loads,
            1.004,
            NoiseModel::Multiplicative { sigma: 2e-6 },
        );
        self.add(
            EventName::cpu_q("LS_DISPATCH", "STORE_DISPATCH"),
            "Store uops dispatched",
            EventDomain::Memory,
            CpuBase::Stores,
            1.0,
            NoiseModel::Multiplicative { sigma: 2e-6 },
        );
        self.add(
            EventName::cpu_q("LS_DC_ACCESSES", "ALL"),
            "L1 data cache accesses",
            EventDomain::Memory,
            CpuBase::Loads,
            1.01,
            cache(1e-3),
        );
        self.add(
            EventName::cpu_q("LS_MAB_ALLOC", "LOADS"),
            "Miss address buffer allocations (L1D load misses)",
            EventDomain::Memory,
            CpuBase::L1Miss,
            1.0,
            cache(3e-3),
        );
        self.add(
            EventName::cpu_q("LS_ANY_FILLS_FROM_SYS", "LOCAL_L2"),
            "Demand fills sourced from L2",
            EventDomain::Memory,
            CpuBase::L2Hit,
            1.0,
            cache(4e-3),
        );
        self.add(
            EventName::cpu_q("LS_ANY_FILLS_FROM_SYS", "LOCAL_CCX"),
            "Demand fills sourced from L3",
            EventDomain::Memory,
            CpuBase::L3Hit,
            1.0,
            cache(7e-3),
        );
        self.add(
            EventName::cpu_q("LS_ANY_FILLS_FROM_SYS", "DRAM_IO"),
            "Demand fills sourced from memory",
            EventDomain::Memory,
            CpuBase::L3Miss,
            1.02,
            cache(1.2e-2),
        );
        self.add(
            EventName::cpu_q("L2_CACHE_REQ_STAT", "LS_RD_BLK_C_HIT"),
            "L2 demand read hits",
            EventDomain::Memory,
            CpuBase::L2RqstsDemandRdHit,
            1.0,
            cache(3e-3),
        );
        self.add(
            EventName::cpu_q("L2_CACHE_REQ_STAT", "LS_RD_BLK_C_MISS"),
            "L2 demand read misses",
            EventDomain::Memory,
            CpuBase::L2RqstsDemandRdMiss,
            1.015,
            cache(6e-3),
        );
        self.add(
            EventName::cpu_q("L2_PF_HIT_L2", "ALL"),
            "L2 prefetch hits",
            EventDomain::Memory,
            CpuBase::Zero,
            1.0,
            NoiseModel::Additive { scale: 1.0 },
        );
        self.add(
            EventName::cpu_q("LS_L1_D_TLB_MISS", "ALL"),
            "L1 DTLB misses",
            EventDomain::Tlb,
            CpuBase::DtlbLoadMisses,
            1.0,
            cache(4e-3),
        );
        self.add(
            EventName::cpu_q("LS_TABLEWALKER", "DSIDE"),
            "Data-side table walks",
            EventDomain::Tlb,
            CpuBase::DtlbLoadMisses,
            0.98,
            cache(6e-3),
        );

        // Integer pipes.
        for (i, name) in ["EX_RET_INT_ADD", "EX_RET_INT_MUL", "EX_RET_INT_CMP", "EX_RET_INT_LOGIC"]
            .iter()
            .enumerate()
        {
            self.add(
                EventName::cpu(*name),
                "Integer pipe retirement",
                EventDomain::Other,
                CpuBase::IntKind(i),
                1.0,
                exact,
            );
        }

        // Noisy/unrelated tail: data-fabric, power, microcode.
        for cs in 0..4 {
            for base_name in ["DF_CS_UMC_CLK", "DF_CS_REQUESTS", "DF_CCM_TRAFFIC"] {
                self.add(
                    EventName::cpu(base_name).with_qualifier(
                        catalyze_events::Qualifier::with_value("cs", cs.to_string()),
                    ),
                    "Data-fabric traffic (uncore)",
                    EventDomain::Uncore,
                    CpuBase::Zero,
                    1.0,
                    NoiseModel::Unrelated { mean: 4e5 + 5e4 * cs as f64, spread: 0.06 },
                );
            }
        }
        for (name, mean, spread) in [
            ("PKG_ENERGY", 8e3, 0.04),
            ("CORE_ENERGY", 900.0, 0.06),
            ("THERM_MARGIN", 35.0, 0.1),
            ("UCODE_ASSISTS", 1.0, 1.5),
            ("SMU_ARBITRATIONS", 40.0, 0.7),
        ] {
            self.add(
                EventName::cpu(name),
                "Package telemetry",
                EventDomain::Software,
                CpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean, spread },
            );
        }
        // Frontend / stalls: cycle-scaled noise.
        for (i, name) in [
            "DE_DIS_DISPATCH_TOKEN_STALLS",
            "DE_NO_DISPATCH_PER_SLOT",
            "EX_NO_RETIRE",
            "LS_INT_TAKEN",
            "IC_FETCH_STALL",
            "IC_CACHE_FILL_L2",
        ]
        .iter()
        .enumerate()
        {
            self.add(
                EventName::cpu(*name),
                "Pipeline stall accounting",
                EventDomain::Cycles,
                CpuBase::Cycles,
                0.08 + 0.07 * i as f64,
                NoiseModel::Multiplicative { sigma: 4e-3 },
            );
        }
        self.into_set()
    }

    fn into_set(self) -> CpuEventSet {
        CpuEventSet::from_parts(self.catalog, self.defs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{CoreConfig, Cpu};
    use crate::isa::{FpKind, Instruction, Precision, VecWidth};
    use crate::program::{Block, Program};

    #[test]
    fn inventory_builds() {
        let set = zen_like();
        assert!(set.len() >= 50, "{}", set.len());
        assert!(set.id_of("RETIRED_SSE_AVX_FLOPS:ANY").is_some());
        assert!(set.id_of("EX_RET_BRN_TKN").is_some());
        assert!(set.id_of("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE").is_none(), "no Intel names");
    }

    #[test]
    fn flop_counters_merge_precisions_and_count_ops() {
        let set = zen_like();
        let mut cpu = Cpu::new(CoreConfig::default_sim());
        let block = Block::new()
            .push(Instruction::fp(Precision::Double, VecWidth::V256, FpKind::Fma))
            .push(Instruction::fp(Precision::Single, VecWidth::V128, FpKind::Add));
        cpu.run(&Program::new().bare_loop(block, 10));
        let stats = cpu.stats();
        // MAC: 10 instr x 4 DP lanes x 2 ops = 80.
        let mac = set.id_of("RETIRED_SSE_AVX_FLOPS:MAC_FLOPS").unwrap();
        assert_eq!(set.true_count(mac, &stats), Some(80.0));
        // ADD_SUB: 10 instr x 4 SP lanes = 40 (SP and DP merged).
        let add = set.id_of("RETIRED_SSE_AVX_FLOPS:ADD_SUB_FLOPS").unwrap();
        assert_eq!(set.true_count(add, &stats), Some(40.0));
        let any = set.id_of("RETIRED_SSE_AVX_FLOPS:ANY").unwrap();
        assert_eq!(set.true_count(any, &stats), Some(120.0));
    }

    #[test]
    fn no_direct_taken_conditional_event() {
        let set = zen_like();
        for (_, def) in set.iter() {
            if def.info.name.to_string().contains("TKN") {
                assert!(matches!(def.base, CpuBase::BrAllTaken), "only the all-taken event exists");
            }
        }
    }
}
