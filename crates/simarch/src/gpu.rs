//! Wavefront-level GPU model (AMD MI250X-like) with its event inventory.
//!
//! The GPU-FLOPs CAT benchmark only needs faithful *instruction counting*
//! semantics: each kernel issues a known number of VALU instructions of one
//! class per wavefront. The model therefore executes kernels at wavefront
//! granularity: dispatch is limited by compute-unit/SIMD occupancy, VALU
//! counters accumulate per `(class, precision)`, and cycle/L2/power
//! telemetry is derived with realistic noise.
//!
//! Semantics matching real MI250X counters that the paper's results rely
//! on: `SQ_INSTS_VALU_ADD_F*` counts **both** additions and subtractions
//! (§V-B: "occur in equivalent amounts for addition and subtraction
//! kernels"), and square root lands in the `TRANS` (transcendental) class.

use crate::isa::{FpKind, Precision};
use crate::noise::NoiseModel;
use catalyze_events::{EventCatalog, EventDomain, EventId, EventInfo, EventName, Qualifier};
use serde::{Deserialize, Serialize};

/// GPU device geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Compute units per die.
    pub compute_units: u32,
    /// SIMD units per compute unit.
    pub simds_per_cu: u32,
    /// Wavefront width (threads).
    pub wave_width: u32,
}

impl GpuConfig {
    /// One MI250X graphics compute die: 110 CUs, 4 SIMDs each, wave64.
    pub fn default_sim() -> Self {
        Self { compute_units: 110, simds_per_cu: 4, wave_width: 64 }
    }
}

/// A GPU microkernel: `wavefronts` wavefronts each issuing `instructions`
/// VALU instructions of one `(op, precision)` class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuKernel {
    /// Kernel label (reporting only).
    pub name: String,
    /// VALU operation class.
    pub op: FpKind,
    /// Element precision.
    pub prec: Precision,
    /// VALU instructions per wavefront.
    pub instructions: u64,
    /// Number of wavefronts dispatched.
    pub wavefronts: u64,
}

fn prec_index(p: Precision) -> usize {
    match p {
        Precision::Half => 0,
        Precision::Single => 1,
        Precision::Double => 2,
    }
}

/// Counters accumulated by one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GpuStats {
    /// VALU add+sub instructions per precision (the fused ADD counter).
    pub valu_add: [u64; 3],
    /// VALU multiplies per precision.
    pub valu_mul: [u64; 3],
    /// VALU transcendental ops (sqrt, div, etc.) per precision.
    pub valu_trans: [u64; 3],
    /// VALU fused multiply-adds per precision.
    pub valu_fma: [u64; 3],
    /// Scalar-ALU instructions (kernel control flow).
    pub salu: u64,
    /// Scalar memory reads (kernel argument loads).
    pub smem: u64,
    /// Vector memory reads.
    pub vmem_rd: u64,
    /// Vector memory writes.
    pub vmem_wr: u64,
    /// Wavefronts launched.
    pub waves: u64,
    /// Busy cycles (derived from the dispatch model).
    pub busy_cycles: u64,
}

impl GpuStats {
    /// All VALU instructions.
    pub fn valu_total(&self) -> u64 {
        let sum = |a: &[u64; 3]| a.iter().sum::<u64>();
        sum(&self.valu_add) + sum(&self.valu_mul) + sum(&self.valu_trans) + sum(&self.valu_fma)
    }
}

/// One GPU device.
#[derive(Debug, Clone)]
pub struct GpuDevice {
    cfg: GpuConfig,
    /// Accumulated counters.
    pub stats: GpuStats,
}

impl GpuDevice {
    /// Creates an idle device.
    pub fn new(cfg: GpuConfig) -> Self {
        Self { cfg, stats: GpuStats::default() }
    }

    /// Launches a kernel to completion.
    pub fn launch(&mut self, k: &GpuKernel) {
        let total_instr = k.instructions * k.wavefronts;
        let pi = prec_index(k.prec);
        match k.op {
            FpKind::Add | FpKind::Sub => self.stats.valu_add[pi] += total_instr,
            FpKind::Mul => self.stats.valu_mul[pi] += total_instr,
            FpKind::Div | FpKind::Sqrt => self.stats.valu_trans[pi] += total_instr,
            FpKind::Fma => self.stats.valu_fma[pi] += total_instr,
        }
        self.stats.waves += k.wavefronts;
        // Kernel preamble per wavefront: control flow + argument loads,
        // plus one loop-control SALU op per 16 VALU instructions.
        self.stats.salu += k.wavefronts * (8 + k.instructions / 16);
        self.stats.smem += k.wavefronts * 4;
        self.stats.vmem_rd += k.wavefronts * 2;
        self.stats.vmem_wr += k.wavefronts;
        // Dispatch model: wavefront slots = CUs x SIMDs; each batch runs
        // its instructions back-to-back at class-dependent issue latency.
        let slots = u64::from(self.cfg.compute_units) * u64::from(self.cfg.simds_per_cu);
        let batches = k.wavefronts.div_ceil(slots.max(1));
        let latency = match (k.op, k.prec) {
            (FpKind::Sqrt | FpKind::Div, _) => 16,
            (_, Precision::Double) => 2,
            _ => 1,
        };
        self.stats.busy_cycles += batches * k.instructions * latency;
    }

    /// Clears counters.
    pub fn reset_stats(&mut self) {
        self.stats = GpuStats::default();
    }
}

/// Base semantic of a GPU raw event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
// lint: allow(dead_api): base-event discriminant in GpuEventDef's public fields
pub enum GpuBase {
    /// `SQ_INSTS_VALU_ADD_F*`: adds and subtracts of one precision.
    ValuAdd(Precision),
    /// Multiplies of one precision.
    ValuMul(Precision),
    /// Transcendental ops of one precision.
    ValuTrans(Precision),
    /// FMAs of one precision.
    ValuFma(Precision),
    /// All VALU instructions.
    ValuTotal,
    /// Scalar-ALU instructions.
    Salu,
    /// Scalar memory instructions.
    Smem,
    /// Vector memory reads.
    VmemRd,
    /// Vector memory writes.
    VmemWr,
    /// Wavefronts launched.
    Waves,
    /// Busy cycles.
    BusyCycles,
    /// Nothing the benchmarks exercise.
    Zero,
}

impl GpuBase {
    /// Evaluates the true count against device statistics.
    pub fn eval(&self, s: &GpuStats) -> f64 {
        let v: u64 = match *self {
            GpuBase::ValuAdd(p) => s.valu_add[prec_index(p)],
            GpuBase::ValuMul(p) => s.valu_mul[prec_index(p)],
            GpuBase::ValuTrans(p) => s.valu_trans[prec_index(p)],
            GpuBase::ValuFma(p) => s.valu_fma[prec_index(p)],
            GpuBase::ValuTotal => s.valu_total(),
            GpuBase::Salu => s.salu,
            GpuBase::Smem => s.smem,
            GpuBase::VmemRd => s.vmem_rd,
            GpuBase::VmemWr => s.vmem_wr,
            GpuBase::Waves => s.waves,
            GpuBase::BusyCycles => s.busy_cycles,
            GpuBase::Zero => 0,
        };
        v as f64
    }
}

/// Full definition of one GPU raw event (bound to one device).
#[derive(Debug, Clone, Serialize, Deserialize)]
// lint: allow(dead_api): event-definition type in GpuEventSet's public surface
pub struct GpuEventDef {
    /// Catalog entry.
    pub info: EventInfo,
    /// Device the event reads from.
    pub device: u32,
    /// Base semantic.
    pub base: GpuBase,
    /// Count multiplier.
    pub scale: f64,
    /// Observation noise.
    pub noise: NoiseModel,
}

/// The GPU event inventory across all devices of a node.
#[derive(Debug, Clone)]
pub struct GpuEventSet {
    catalog: EventCatalog,
    defs: Vec<GpuEventDef>,
}

impl GpuEventSet {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The name catalog.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// Definition by id.
    pub fn def(&self, id: EventId) -> Option<&GpuEventDef> {
        self.defs.get(id.index())
    }

    /// Iterates definitions in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &GpuEventDef)> {
        self.defs.iter().enumerate().map(|(i, d)| (EventId(i as u32), d))
    }

    /// Id by exact name.
    pub fn id_of(&self, name: &str) -> Option<EventId> {
        self.catalog.id_of(name)
    }

    /// True count of an event given per-device statistics.
    pub fn true_count(&self, id: EventId, devices: &[GpuStats]) -> Option<f64> {
        let d = self.defs.get(id.index())?;
        let stats = devices.get(d.device as usize)?;
        Some(d.base.eval(stats) * d.scale)
    }
}

/// Builds the MI250X-like event set for `num_devices` devices
/// (8 on a Frontier node → ~1200 events).
pub fn mi250x_like(num_devices: u32) -> GpuEventSet {
    let mut catalog = EventCatalog::new();
    let mut defs = Vec::new();
    let mut add =
        |name: EventName, desc: &str, device: u32, base: GpuBase, scale: f64, noise: NoiseModel| {
            let info = EventInfo { name, description: desc.to_string(), domain: EventDomain::Gpu };
            // lint: allow(panic, reachable_panic): the builder inserts a static, duplicate-free inventory
            catalog.add(info.clone()).expect("duplicate GPU event");
            defs.push(GpuEventDef { info, device, base, scale, noise });
        };
    let exact = NoiseModel::None;

    for dev in 0..num_devices {
        let dq = |base: &str| {
            EventName::component("rocm", base)
                .with_qualifier(Qualifier::with_value("device", dev.to_string()))
        };
        // SQ_INSTS_VALU_{class}_F{16,32,64}: exact instruction counters.
        for (class, mk) in [
            ("ADD", GpuBase::ValuAdd as fn(Precision) -> GpuBase),
            ("MUL", GpuBase::ValuMul as fn(Precision) -> GpuBase),
            ("TRANS", GpuBase::ValuTrans as fn(Precision) -> GpuBase),
            ("FMA", GpuBase::ValuFma as fn(Precision) -> GpuBase),
        ] {
            for (pname, prec) in
                [("16", Precision::Half), ("32", Precision::Single), ("64", Precision::Double)]
            {
                add(
                    dq(&format!("SQ_INSTS_VALU_{class}_F{pname}")),
                    "VALU instruction count by class and precision (ADD counts subs too)",
                    dev,
                    mk(prec),
                    1.0,
                    exact,
                );
            }
        }
        add(dq("SQ_INSTS_VALU"), "All VALU instructions", dev, GpuBase::ValuTotal, 1.0, exact);
        add(dq("SQ_INSTS_SALU"), "Scalar ALU instructions", dev, GpuBase::Salu, 1.0, exact);
        add(dq("SQ_INSTS_SMEM"), "Scalar memory instructions", dev, GpuBase::Smem, 1.0, exact);
        add(dq("SQ_INSTS_VMEM_RD"), "Vector memory reads", dev, GpuBase::VmemRd, 1.0, exact);
        add(dq("SQ_INSTS_VMEM_WR"), "Vector memory writes", dev, GpuBase::VmemWr, 1.0, exact);
        add(dq("SQ_INSTS_LDS"), "LDS instructions", dev, GpuBase::Zero, 1.0, exact);
        add(dq("SQ_INSTS_FLAT"), "FLAT memory instructions", dev, GpuBase::Zero, 1.0, exact);
        add(dq("SQ_WAVES"), "Wavefronts launched", dev, GpuBase::Waves, 1.0, exact);
        add(
            dq("SQ_BUSY_CYCLES"),
            "Sequencer busy cycles",
            dev,
            GpuBase::BusyCycles,
            1.0,
            NoiseModel::Multiplicative { sigma: 3e-4 },
        );
        add(
            dq("SQ_WAVE_CYCLES"),
            "Wave residency cycles",
            dev,
            GpuBase::BusyCycles,
            1.4,
            NoiseModel::Multiplicative { sigma: 8e-4 },
        );
        add(
            dq("GRBM_GUI_ACTIVE"),
            "Graphics pipe active cycles",
            dev,
            GpuBase::BusyCycles,
            1.1,
            NoiseModel::Multiplicative { sigma: 2e-3 },
        );
        add(
            dq("GRBM_COUNT"),
            "Free-running GRBM clock",
            dev,
            GpuBase::Zero,
            1.0,
            NoiseModel::Unrelated { mean: 2e8, spread: 0.01 },
        );
        // L2 (TCC) channels: benchmark data footprint is tiny, so these are
        // dominated by background traffic.
        for ch in 0..16 {
            add(
                dq(&format!("TCC_HIT[{ch}]")),
                "L2 channel hits",
                dev,
                GpuBase::VmemRd,
                0.05,
                NoiseModel::Multiplicative { sigma: 0.15 },
            );
            add(
                dq(&format!("TCC_MISS[{ch}]")),
                "L2 channel misses",
                dev,
                GpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean: 300.0, spread: 0.4 },
            );
        }
        // Further TCC umasks and per-instance texture-cache-pipe counters:
        // background traffic only.
        for ch in 0..16 {
            add(
                dq(&format!("TCC_READ[{ch}]")),
                "L2 channel read requests",
                dev,
                GpuBase::VmemRd,
                0.06,
                NoiseModel::Multiplicative { sigma: 0.2 },
            );
            add(
                dq(&format!("TCC_WRITE[{ch}]")),
                "L2 channel write requests",
                dev,
                GpuBase::VmemWr,
                0.06,
                NoiseModel::Multiplicative { sigma: 0.25 },
            );
        }
        for inst in 0..8 {
            for umask in ["TCP_READ", "TCP_WRITE", "TCP_ATOMIC"] {
                add(
                    dq(&format!("{umask}[{inst}]")),
                    "Per-CU vector cache pipe traffic",
                    dev,
                    GpuBase::Zero,
                    1.0,
                    NoiseModel::Unrelated { mean: 150.0 + 10.0 * inst as f64, spread: 0.5 },
                );
            }
        }
        for misc in [
            "SQ_INSTS_BRANCH",
            "SQ_INSTS_SENDMSG",
            "SQ_INSTS_EXP",
            "SQ_ITEMS",
            "SQ_ACCUM_PREV",
            "SQ_IFETCH",
            "SQC_ICACHE_HITS",
            "SQC_ICACHE_MISSES",
            "SQC_DCACHE_HITS",
            "SQC_DCACHE_MISSES",
        ] {
            add(
                dq(misc),
                "Sequencer miscellany",
                dev,
                GpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean: 80.0, spread: 0.6 },
            );
        }
        // Texture-addresser/data units: idle on compute kernels.
        for unit in ["TA_BUSY", "TD_BUSY", "TCP_BUSY", "CPC_BUSY", "CPF_BUSY", "SPI_BUSY"] {
            add(
                dq(unit),
                "Fixed-function unit busy cycles",
                dev,
                GpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean: 1e4, spread: 0.2 },
            );
        }
        // Power/thermal telemetry.
        for (name, mean, spread) in [
            ("GPU_POWER", 350.0, 0.05),
            ("GPU_TEMP_EDGE", 55.0, 0.04),
            ("GPU_TEMP_JUNCTION", 70.0, 0.04),
            ("GPU_SCLK", 1.6e3, 0.02),
        ] {
            add(
                dq(name),
                "Device telemetry",
                dev,
                GpuBase::Zero,
                1.0,
                NoiseModel::Unrelated { mean, spread },
            );
        }
    }

    GpuEventSet { catalog, defs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_kernel(op: FpKind, prec: Precision) -> GpuKernel {
        GpuKernel { name: "k".into(), op, prec, instructions: 256, wavefronts: 440 }
    }

    #[test]
    fn event_count_scales_with_devices() {
        let one = mi250x_like(1);
        let eight = mi250x_like(8);
        assert_eq!(eight.len(), one.len() * 8);
        assert!(eight.len() > 1000, "got {}", eight.len());
        assert!(!eight.is_empty());
    }

    #[test]
    fn add_event_counts_both_add_and_sub() {
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        dev.launch(&add_kernel(FpKind::Add, Precision::Half));
        dev.launch(&add_kernel(FpKind::Sub, Precision::Half));
        assert_eq!(dev.stats.valu_add[0], 2 * 256 * 440);
        assert_eq!(dev.stats.valu_mul[0], 0);
    }

    #[test]
    fn sqrt_counts_as_trans() {
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        dev.launch(&add_kernel(FpKind::Sqrt, Precision::Double));
        assert_eq!(dev.stats.valu_trans[2], 256 * 440);
    }

    #[test]
    fn fma_counts_once_as_instruction() {
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        dev.launch(&add_kernel(FpKind::Fma, Precision::Single));
        assert_eq!(dev.stats.valu_fma[1], 256 * 440);
        assert_eq!(dev.stats.valu_total(), 256 * 440);
    }

    #[test]
    fn true_count_respects_device_binding() {
        let set = mi250x_like(2);
        let mut d0 = GpuDevice::new(GpuConfig::default_sim());
        d0.launch(&add_kernel(FpKind::Add, Precision::Half));
        let stats = [d0.stats, GpuStats::default()];
        let id0 = set.id_of("rocm:::SQ_INSTS_VALU_ADD_F16:device=0").unwrap();
        let id1 = set.id_of("rocm:::SQ_INSTS_VALU_ADD_F16:device=1").unwrap();
        assert_eq!(set.true_count(id0, &stats), Some((256 * 440) as f64));
        assert_eq!(set.true_count(id1, &stats), Some(0.0));
        assert!(set.def(id1).is_some());
    }

    #[test]
    fn dispatch_model_cycles() {
        let mut dev = GpuDevice::new(GpuConfig::default_sim());
        let k = add_kernel(FpKind::Add, Precision::Half); // 440 waves on 440 slots -> 1 batch
        dev.launch(&k);
        assert_eq!(dev.stats.busy_cycles, 256);
        dev.reset_stats();
        let big = GpuKernel { wavefronts: 441, ..k };
        dev.launch(&big); // 2 batches
        assert_eq!(dev.stats.busy_cycles, 512);
    }

    #[test]
    fn double_precision_slower() {
        let mut d1 = GpuDevice::new(GpuConfig::default_sim());
        let mut d2 = GpuDevice::new(GpuConfig::default_sim());
        d1.launch(&add_kernel(FpKind::Add, Precision::Half));
        d2.launch(&add_kernel(FpKind::Add, Precision::Double));
        assert!(d2.stats.busy_cycles > d1.stats.busy_cycles);
    }

    #[test]
    fn valu_counters_are_exact() {
        let set = mi250x_like(1);
        for (_, def) in set.iter() {
            if def.info.name.base.starts_with("SQ_INSTS_VALU") {
                assert!(def.noise.is_exact(), "{} must be exact", def.info.name);
            }
        }
    }
}
