//! Metric definition (paper §VI): least-squares composition of selected
//! events into metric signatures, with the backward-error fitness measure
//! and the coefficient-rounding step used for noisy (cache) events.

use crate::error::AnalysisError;
use crate::select::Selection;
use crate::signature::MetricSignature;
use catalyze_events::{Preset, PresetTerm};
use catalyze_linalg::{FactoredLstsq, Matrix};
use serde::{Deserialize, Serialize};

/// A metric defined (or shown non-composable) over raw events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefinedMetric {
    /// Metric name.
    pub metric: String,
    /// Raw least-squares coefficients, aligned with the selection's events.
    pub coefficients: Vec<f64>,
    /// Selected-event names, aligned with `coefficients`.
    pub events: Vec<String>,
    /// Backward error of the raw solution (Eq. 5).
    pub error: f64,
    /// Coefficients rounded to the nearest integer where they fall within
    /// the rounding tolerance (§VI-D / Figure 3), `None` where they do not.
    pub rounded: Vec<Option<f64>>,
    /// Backward error of the rounded combination (only meaningful when all
    /// coefficients rounded).
    pub rounded_error: Option<f64>,
}

impl DefinedMetric {
    /// True when the definition's backward error is below `threshold`
    /// (composable on this architecture).
    pub fn is_composable(&self, threshold: f64) -> bool {
        self.error <= threshold
    }

    /// Exports as a preset, dropping terms with negligible coefficients.
    /// Uses rounded coefficients when every coefficient rounded cleanly,
    /// raw ones otherwise. The exported error matches the exported
    /// coefficients: the rounded backward error when the rounded
    /// coefficients ship, the raw one otherwise.
    pub fn to_preset(&self, drop_below: f64) -> Preset {
        let use_rounded = self.rounded.iter().all(|r| r.is_some());
        let terms = self
            .events
            .iter()
            .zip(self.coefficients.iter().zip(&self.rounded))
            .filter_map(|(name, (&raw, rounded))| {
                let c = if use_rounded { rounded.unwrap_or(raw) } else { raw };
                if c.abs() <= drop_below {
                    None
                } else {
                    Some(PresetTerm {
                        coefficient: c,
                        // lint: allow(panic, reachable_panic): selection names originate from catalog events, which parse
                        event: name.parse().expect("selection names are valid event names"),
                    })
                }
            })
            .collect();
        let error = if use_rounded { self.rounded_error.unwrap_or(self.error) } else { self.error };
        Preset { metric: self.metric.clone(), terms, error }
    }
}

/// Rounds a coefficient to the nearest integer when within `tol`.
pub fn round_coefficient(c: f64, tol: f64) -> Option<f64> {
    let r = c.round();
    if (c - r).abs() <= tol {
        Some(r)
    } else {
        None
    }
}

/// Defines one metric over the selection by solving `X̂ · y = s`.
///
/// # Errors
/// [`AnalysisError::Shape`] when the signature dimension does not match the
/// selection's basis dimension; [`AnalysisError::Linalg`] when the solve
/// fails (cannot happen for a QRCP-produced `X̂`, whose columns are
/// independent by construction, but callers with hand-built selections get
/// the error back instead of a panic).
pub fn define_metric(
    selection: &Selection,
    x_hat: &Matrix,
    signature: &MetricSignature,
    rounding_tol: f64,
) -> Result<DefinedMetric, AnalysisError> {
    let factored = FactoredLstsq::factor(x_hat)?;
    define_metric_factored(selection, &factored, signature, rounding_tol)
}

/// [`define_metric`] against an already-factored `X̂` — the batched entry
/// point [`define_metrics`] uses so one QR factorization and one spectral
/// norm serve every signature. Results are bit-identical to the one-shot
/// path.
///
/// # Errors
/// The [`define_metric`] errors.
pub(crate) fn define_metric_factored(
    selection: &Selection,
    x_hat: &FactoredLstsq<'_>,
    signature: &MetricSignature,
    rounding_tol: f64,
) -> Result<DefinedMetric, AnalysisError> {
    if signature.coefficients.len() != x_hat.rows() {
        return Err(AnalysisError::Shape {
            context: "signature coefficients vs basis dimension",
            expected: x_hat.rows(),
            got: signature.coefficients.len(),
        });
    }
    let sol = x_hat.solve(&signature.coefficients)?;
    let rounded: Vec<Option<f64>> =
        sol.x.iter().map(|&c| round_coefficient(c, rounding_tol)).collect();
    // Collecting through Option<Vec<_>> short-circuits on any unrounded
    // coefficient, so the all-Some case needs no panic site at all.
    let rounded_error = rounded
        .iter()
        .copied()
        .collect::<Option<Vec<f64>>>()
        .and_then(|y| x_hat.backward_error(&y, &signature.coefficients).ok());
    Ok(DefinedMetric {
        metric: signature.name.clone(),
        coefficients: sol.x,
        events: selection.names().iter().map(|s| s.to_string()).collect(),
        error: sol.backward_error,
        rounded,
        rounded_error,
    })
}

/// Defines every signature over the selection. Returns an empty list when
/// the selection is empty. `X̂` is factored once and shared by every
/// signature's solve and rounded-error evaluation.
///
/// # Errors
/// Propagates the first [`define_metric`] failure.
pub fn define_metrics(
    selection: &Selection,
    signatures: &[MetricSignature],
    rounding_tol: f64,
) -> Result<Vec<DefinedMetric>, AnalysisError> {
    let Some(x_hat) = selection.x_hat() else {
        return Ok(Vec::new());
    };
    let factored = FactoredLstsq::factor(&x_hat)?;
    signatures
        .iter()
        .map(|s| define_metric_factored(selection, &factored, s, rounding_tol))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::branch_basis;
    use crate::normalize::represent;
    use crate::select::select_events;
    use crate::signature::branch_signatures;

    fn branch_selection() -> Selection {
        let b = branch_basis();
        let col = |j: usize| -> Vec<f64> { (0..11).map(|i| b.matrix[(i, j)]).collect() };
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let rep = represent(
            &b,
            &[
                (0, "BR_MISP_RETIRED".into(), col(4)),
                (1, "BR_INST_RETIRED:COND".into(), col(1)),
                (2, "BR_INST_RETIRED:COND_TAKEN".into(), col(2)),
                (3, "BR_INST_RETIRED:ALL_BRANCHES".into(), all),
            ],
            1e-6,
        )
        .unwrap();
        select_events(&rep, 5e-4).unwrap()
    }

    #[test]
    fn composable_branch_metrics_reproduce_table7() {
        let sel = branch_selection();
        let metrics = define_metrics(&sel, &branch_signatures(), 0.02).unwrap();
        assert_eq!(metrics.len(), 7);

        let get = |name: &str| metrics.iter().find(|m| m.metric.starts_with(name)).unwrap();

        // Unconditional = ALL_BRANCHES - COND.
        let uncond = get("Unconditional");
        assert!(uncond.error < 1e-10, "error {}", uncond.error);
        let coef = |m: &DefinedMetric, ev: &str| {
            m.events.iter().position(|e| e == ev).map(|i| m.coefficients[i]).unwrap()
        };
        assert!((coef(uncond, "BR_INST_RETIRED:ALL_BRANCHES") - 1.0).abs() < 1e-10);
        assert!((coef(uncond, "BR_INST_RETIRED:COND") + 1.0).abs() < 1e-10);

        // Correctly Predicted = COND - MISP.
        let correct = get("Correctly Predicted");
        assert!(correct.error < 1e-10);
        assert!((coef(correct, "BR_INST_RETIRED:COND") - 1.0).abs() < 1e-10);
        assert!((coef(correct, "BR_MISP_RETIRED") + 1.0).abs() < 1e-10);

        // Conditional Branches Executed: not composable -> error 1.0.
        let executed = get("Conditional Branches Executed");
        assert!((executed.error - 1.0).abs() < 1e-10, "error {}", executed.error);
        assert!(!executed.is_composable(0.5));
        for c in &executed.coefficients {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn rounding_behavior() {
        assert_eq!(round_coefficient(1.003, 0.02), Some(1.0));
        assert_eq!(round_coefficient(-0.98, 0.02), None);
        assert_eq!(round_coefficient(-0.99, 0.02), Some(-1.0));
        assert_eq!(round_coefficient(0.004, 0.02), Some(0.0));
        assert_eq!(round_coefficient(0.5, 0.02), None);
    }

    #[test]
    fn rounded_error_present_when_all_round() {
        let sel = branch_selection();
        let metrics = define_metrics(&sel, &branch_signatures(), 0.05).unwrap();
        let taken = metrics.iter().find(|m| m.metric.contains("Taken.")).unwrap();
        assert!(taken.rounded.iter().all(|r| r.is_some()));
        assert!(taken.rounded_error.unwrap() < 1e-10);
    }

    #[test]
    fn unrounded_coefficients_yield_no_rounded_error() {
        // Regression for the reachable-panic fix: the all-Some check used
        // to be an `if all()` guarding an `.expect()`; it is now a
        // short-circuiting Option collection. A zero tolerance leaves
        // inexact coefficients unrounded, and every such metric must
        // simply skip the rounded-error computation.
        let sel = branch_selection();
        let metrics = define_metrics(&sel, &branch_signatures(), 0.0).unwrap();
        assert!(!metrics.is_empty());
        for m in &metrics {
            if m.rounded.iter().any(|r| r.is_none()) {
                assert!(m.rounded_error.is_none(), "{}", m.metric);
            } else {
                assert!(m.rounded_error.is_some(), "{}", m.metric);
            }
        }
    }

    #[test]
    fn preset_export_drops_zero_terms() {
        let sel = branch_selection();
        let metrics = define_metrics(&sel, &branch_signatures(), 0.02).unwrap();
        let misp = metrics.iter().find(|m| m.metric.starts_with("Mispredicted")).unwrap();
        let preset = misp.to_preset(1e-6);
        assert_eq!(preset.terms.len(), 1);
        assert_eq!(preset.terms[0].event.to_string(), "BR_MISP_RETIRED");
        assert!((preset.terms[0].coefficient - 1.0).abs() < 1e-10);
    }

    #[test]
    fn preset_error_matches_exported_coefficients() {
        // Regression: when every coefficient rounds cleanly the preset
        // ships the rounded coefficients — its error field must then be
        // the rounded backward error, not the raw least-squares one.
        let m = DefinedMetric {
            metric: "M".into(),
            coefficients: vec![1.003, -0.994],
            events: vec!["EV_A".into(), "EV_B".into()],
            error: 3.2e-16,
            rounded: vec![Some(1.0), Some(-1.0)],
            rounded_error: Some(4.7e-3),
        };
        let preset = m.to_preset(1e-6);
        assert_eq!(preset.terms[0].coefficient, 1.0);
        assert_eq!(preset.terms[1].coefficient, -1.0);
        assert_eq!(preset.error, 4.7e-3, "rounded coefficients ship the rounded error");

        // When some coefficient does not round, raw coefficients ship and
        // so does the raw error.
        let raw = DefinedMetric { rounded: vec![Some(1.0), None], ..m.clone() };
        let preset = raw.to_preset(1e-6);
        assert_eq!(preset.terms[0].coefficient, 1.003);
        assert_eq!(preset.error, 3.2e-16);
    }

    #[test]
    fn mismatched_signature_dimension_is_an_error() {
        let sel = branch_selection();
        let x_hat = sel.x_hat().unwrap();
        let bad = MetricSignature::new("Bad", vec![1.0; 3]);
        let err = define_metric(&sel, &x_hat, &bad, 0.02).unwrap_err();
        assert!(
            matches!(err, AnalysisError::Shape { expected, got: 3, .. } if expected == x_hat.rows()),
            "{err:?}"
        );
    }

    #[test]
    fn empty_selection_defines_nothing() {
        let sel = Selection { events: vec![], alpha: 5e-4, candidates: 0 };
        assert!(define_metrics(&sel, &branch_signatures(), 0.02).unwrap().is_empty());
    }
}
