//! The end-to-end analysis pipeline: noise filter → expectation-basis
//! representation → specialized-QRCP selection → least-squares metric
//! definition.
//!
//! [`AnalysisRequest`] is the primary entry point — a borrowing builder
//! that validates its input shapes, threads an [`Observer`] through every
//! stage (spans, per-stage funnel records, linalg solve counters), and
//! returns recoverable [`AnalysisError`]s. [`analyze`] remains as the
//! original thin entry point over it.

use crate::basis::Basis;
use crate::define::{define_metrics, DefinedMetric};
use crate::error::AnalysisError;
use crate::noise::{analyze_noise, NoiseReport};
use crate::normalize::{represent, Representation};
use crate::select::{select_events, Selection};
use crate::signature::MetricSignature;
use catalyze_linalg::{stats, LinalgError};
use catalyze_obs::{FunnelRecord, NoopObserver, Observer, Span};
use serde::{Deserialize, Serialize};

/// The four pipeline stages, in execution order. These are the canonical
/// labels for the stage spans and funnel records every run emits, and the
/// keys under which `catalyze-obs`'s `MetricsRegistry` aggregates
/// per-stage duration histograms and drop rates — downstream consumers
/// (exposition labels, `trace diff` rows) key on exactly these strings.
pub const STAGES: [&str; 4] = ["noise", "represent", "select", "define"];

/// Tuning of the four pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Noise threshold τ for the variability filter (§IV).
    pub tau: f64,
    /// Specialized-QRCP tolerance α (§V).
    pub alpha: f64,
    /// Maximum relative residual for an event to count as representable in
    /// the expectation basis (§III-B).
    pub representation_threshold: f64,
    /// Coefficient rounding tolerance (§VI-D).
    pub rounding_tol: f64,
    /// Backward error below which a metric counts as composable.
    pub composability_threshold: f64,
}

impl Default for AnalysisConfig {
    /// The paper's CPU-side settings ([`AnalysisConfig::cpu_flops`]).
    fn default() -> Self {
        Self::cpu_flops()
    }
}

impl AnalysisConfig {
    /// Paper settings for the CPU-FLOPs events: τ = 1e-10, α = 5e-4.
    pub fn cpu_flops() -> Self {
        Self {
            tau: 1e-10,
            alpha: 5e-4,
            representation_threshold: 0.05,
            rounding_tol: 0.02,
            composability_threshold: 1e-6,
        }
    }

    /// Paper settings for the branching events: τ = 1e-10, α = 5e-4.
    pub fn branch() -> Self {
        Self::cpu_flops()
    }

    /// Paper settings for the GPU-FLOPs events: τ = 1e-10, α = 5e-4.
    pub fn gpu_flops() -> Self {
        Self::cpu_flops()
    }

    /// Paper settings for the data-cache events: τ = 1e-1, α = 5e-2, with a
    /// representation threshold loose enough for the noisy hit/miss curves
    /// (the later QR and rounding stages absorb the slack — §IV's argument
    /// for lenient early filtering).
    pub fn dcache() -> Self {
        Self {
            tau: 1e-1,
            alpha: 5e-2,
            representation_threshold: 0.25,
            rounding_tol: 0.05,
            composability_threshold: 1e-3,
        }
    }

    /// Settings for the store-path extension domain: write-side cache
    /// events share the load side's noise profile.
    pub fn dstore() -> Self {
        Self::dcache()
    }

    /// Settings for the data-TLB extension domain: page-walk counters are
    /// about as noisy as cache events, and the miss-region hit rates leave
    /// a few percent of systematic slack, so the cache-style lenient
    /// thresholds apply.
    pub fn dtlb() -> Self {
        Self::dcache()
    }

    /// Applies one `key=value`-style threshold override. Recognized keys:
    /// `tau`, `alpha`, `representation_threshold`, `rounding_tol`,
    /// `composability_threshold`. Returns `false` for an unknown key (the
    /// CLI turns that into a usage error).
    pub fn set(&mut self, key: &str, value: f64) -> bool {
        match key {
            "tau" => self.tau = value,
            "alpha" => self.alpha = value,
            "representation_threshold" => self.representation_threshold = value,
            "rounding_tol" => self.rounding_tol = value,
            "composability_threshold" => self.composability_threshold = value,
            _ => return false,
        }
        true
    }

    /// The override keys [`AnalysisConfig::set`] accepts, for usage texts.
    pub fn keys() -> [&'static str; 5] {
        ["tau", "alpha", "representation_threshold", "rounding_tol", "composability_threshold"]
    }
}

/// Everything the pipeline produced for one benchmark domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Benchmark/domain label.
    pub domain: String,
    /// The stage configuration used.
    pub config: AnalysisConfig,
    /// Stage 1: variability verdicts.
    pub noise: NoiseReport,
    /// Stage 2: expectation-basis representation of surviving events.
    pub representation: Representation,
    /// Stage 3: independent events chosen by the specialized QRCP.
    pub selection: Selection,
    /// Mean measurement vectors of the selected events (point space),
    /// aligned with `selection.events` — used to draw Figure-3-style
    /// curves.
    pub selected_mean_vectors: Vec<Vec<f64>>,
    /// Stage 4: metric definitions for every requested signature.
    pub metrics: Vec<DefinedMetric>,
}

impl AnalysisReport {
    /// Metrics that are composable under the configured threshold.
    pub fn composable_metrics(&self) -> Vec<&DefinedMetric> {
        self.metrics
            .iter()
            .filter(|m| m.is_composable(self.config.composability_threshold))
            .collect()
    }

    /// Metric by (prefix of) name.
    pub fn metric(&self, name: &str) -> Option<&DefinedMetric> {
        self.metrics.iter().find(|m| m.metric.starts_with(name))
    }
}

/// A borrowing description of one pipeline invocation, built incrementally:
///
/// ```
/// use catalyze::basis::branch_basis;
/// use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
/// use catalyze::signature::branch_signatures;
///
/// let basis = branch_basis();
/// let cr: Vec<f64> = (0..11).map(|i| basis.matrix[(i, 1)]).collect();
/// let names = vec!["BR_INST_RETIRED:COND".to_string()];
/// let runs = vec![vec![cr]];
/// let signatures = branch_signatures();
/// let report = AnalysisRequest::new()
///     .domain("branch")
///     .events(&names)
///     .runs(&runs)
///     .basis(&basis)
///     .signatures(&signatures)
///     .config(AnalysisConfig::branch())
///     .run()
///     .expect("well-formed request");
/// assert_eq!(report.domain, "branch");
/// ```
///
/// [`AnalysisRequest::run`] validates every shape up front and returns an
/// [`AnalysisError`] instead of panicking; attach a
/// [`catalyze_obs::TraceCollector`] with
/// [`observer`](AnalysisRequest::observer) to record per-stage spans,
/// funnel records, and linalg solve counters.
#[derive(Clone, Copy)]
pub struct AnalysisRequest<'a> {
    domain: &'a str,
    events: &'a [String],
    runs: &'a [Vec<Vec<f64>>],
    basis: Option<&'a Basis>,
    signatures: &'a [MetricSignature],
    config: AnalysisConfig,
    observer: &'a dyn Observer,
}

impl Default for AnalysisRequest<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> AnalysisRequest<'a> {
    /// An empty request: no events, no runs, no basis, default
    /// configuration, noop observer.
    pub fn new() -> Self {
        Self {
            domain: "",
            events: &[],
            runs: &[],
            basis: None,
            signatures: &[],
            config: AnalysisConfig::default(),
            observer: &NoopObserver,
        }
    }

    /// Label for the report.
    pub fn domain(mut self, domain: &'a str) -> Self {
        self.domain = domain;
        self
    }

    /// Event names, aligned with the event axis of the runs.
    pub fn events(mut self, events: &'a [String]) -> Self {
        self.events = events;
        self
    }

    /// Measurements: `runs[r][e][p]` is the normalized measurement of event
    /// `e` at point `p` in repetition `r` (the layout of `catalyze-cat`'s
    /// `MeasurementSet`).
    pub fn runs(mut self, runs: &'a [Vec<Vec<f64>>]) -> Self {
        self.runs = runs;
        self
    }

    /// The domain's expectation basis (its `points` must match the
    /// measurement-point axis).
    pub fn basis(mut self, basis: &'a Basis) -> Self {
        self.basis = Some(basis);
        self
    }

    /// The metric signatures to define.
    pub fn signatures(mut self, signatures: &'a [MetricSignature]) -> Self {
        self.signatures = signatures;
        self
    }

    /// Stage thresholds (defaults to [`AnalysisConfig::cpu_flops`]).
    pub fn config(mut self, config: AnalysisConfig) -> Self {
        self.config = config;
        self
    }

    /// Instrumentation sink for spans, funnel records, and solve counters
    /// (defaults to the zero-cost [`NoopObserver`]).
    pub fn observer(mut self, observer: &'a dyn Observer) -> Self {
        self.observer = observer;
        self
    }

    /// Checks every request axis before any stage runs.
    fn validate(&self) -> Result<&'a Basis, AnalysisError> {
        let basis = self.basis.ok_or(AnalysisError::MissingBasis)?;
        if self.runs.is_empty() {
            return Err(AnalysisError::EmptyRuns);
        }
        let points = basis.points();
        for run in self.runs {
            if run.len() != self.events.len() {
                return Err(AnalysisError::Shape {
                    context: "events per run",
                    expected: self.events.len(),
                    got: run.len(),
                });
            }
            for vector in run {
                if vector.len() != points {
                    return Err(AnalysisError::Shape {
                        context: "measurement points per event (basis rows)",
                        expected: points,
                        got: vector.len(),
                    });
                }
            }
        }
        Ok(basis)
    }

    /// Runs the full pipeline: variability filter, expectation-basis
    /// representation, specialized-QRCP selection, and least-squares metric
    /// definition.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::MissingBasis`] / [`AnalysisError::EmptyRuns`] /
    /// [`AnalysisError::Shape`] when the request is incomplete or its axes
    /// disagree; [`AnalysisError::Linalg`] when a kernel fails on the data
    /// (non-finite measurements, a rank-deficient basis).
    // lint: contract(deterministic)
    pub fn run(self) -> Result<AnalysisReport, AnalysisError> {
        let basis = self.validate()?;
        let obs = self.observer;
        let config = self.config;
        let names = self.events;
        let runs = self.runs;
        let before = stats::snapshot();
        let _root = Span::enter(obs, &format!("analyze/{}", self.domain));

        // Stage 1: variability filter (Eq. 4, threshold τ).
        let noise = {
            let _s = Span::enter(obs, STAGES[0]);
            let vectors_by_event: Vec<Vec<&[f64]>> =
                (0..names.len()).map(|e| runs.iter().map(|r| r[e].as_slice()).collect()).collect();
            analyze_noise(names, &vectors_by_event, config.tau)
        };
        let kept = noise.kept();
        obs.funnel(
            FunnelRecord::new(STAGES[0], names.len(), kept.len())
                .dropped("noisy", noise.discarded_noisy().len())
                .dropped("zero", noise.discarded_zero().len()),
        );

        // Stage 2: represent surviving events in the expectation basis,
        // using the mean measurement vector across repetitions (for
        // noise-free events all repetitions are identical; for noisy ones
        // the mean is the natural summary).
        let mean_of = |e: usize| -> Vec<f64> {
            let np = runs[0][e].len();
            let mut mean = vec![0.0; np];
            for run in runs {
                for (m, &v) in mean.iter_mut().zip(&run[e]) {
                    *m += v;
                }
            }
            let n = runs.len() as f64;
            mean.iter_mut().for_each(|m| *m /= n);
            mean
        };
        // The per-event means double as stage 3's selected-event curves, so
        // they are kept alive past the represent stage instead of being
        // recomputed.
        let inputs: Vec<(usize, String, Vec<f64>)> =
            kept.iter().map(|&e| (e, names[e].clone(), mean_of(e))).collect();
        let at_represent = stats::snapshot();
        let representation = {
            let _s = Span::enter(obs, STAGES[1]);
            represent(basis, &inputs, config.representation_threshold)?
        };
        let represent_delta = stats::snapshot().delta_since(&at_represent);
        obs.counter("represent.lstsq_solves", represent_delta.lstsq_solves);
        obs.counter("represent.qr_factorizations", represent_delta.qr_factorizations);
        obs.counter("represent.spectral_norms", represent_delta.spectral_norms);
        obs.funnel(
            FunnelRecord::new(STAGES[1], kept.len(), representation.kept.len())
                .dropped("unrepresentable", representation.rejected.len()),
        );

        // Stage 3: specialized QRCP.
        let selection = {
            let _s = Span::enter(obs, STAGES[2]);
            select_events(&representation, config.alpha)?
        };
        // Selected events all survived the noise filter, so their means are
        // already in `inputs`; the fallback only covers a (hypothetical)
        // selection outside the kept set and computes the identical vector.
        let selected_mean_vectors: Vec<Vec<f64>> = selection
            .events
            .iter()
            .map(|e| {
                inputs
                    .iter()
                    .find(|(idx, _, _)| *idx == e.index)
                    .map(|(_, _, m)| m.clone())
                    .unwrap_or_else(|| mean_of(e.index))
            })
            .collect();
        obs.funnel(
            FunnelRecord::new(STAGES[2], selection.candidates, selection.events.len())
                .dropped("dependent", selection.candidates.saturating_sub(selection.events.len())),
        );

        // Stage 4: least-squares metric definitions.
        let at_define = stats::snapshot();
        let metrics = {
            let _s = Span::enter(obs, STAGES[3]);
            define_metrics(&selection, self.signatures, config.rounding_tol)?
        };
        let define_delta = stats::snapshot().delta_since(&at_define);
        obs.counter("define.lstsq_solves", define_delta.lstsq_solves);
        obs.counter("define.qr_factorizations", define_delta.qr_factorizations);
        obs.counter("define.spectral_norms", define_delta.spectral_norms);
        let composable =
            metrics.iter().filter(|m| m.is_composable(config.composability_threshold)).count();
        obs.funnel(
            FunnelRecord::new(STAGES[3], self.signatures.len(), composable)
                .dropped("non-composable", self.signatures.len().saturating_sub(composable)),
        );

        // Pipeline-total linalg counters.
        let delta = stats::snapshot().delta_since(&before);
        obs.counter("linalg.lstsq_solves", delta.lstsq_solves);
        obs.counter("linalg.lstsq_nanos", delta.lstsq_nanos);
        obs.counter("linalg.qr_factorizations", delta.qr_factorizations);
        obs.counter("linalg.qr_nanos", delta.qr_nanos);
        obs.counter("linalg.spqrcp_runs", delta.spqrcp_runs);
        obs.counter("linalg.spqrcp_nanos", delta.spqrcp_nanos);
        obs.counter("linalg.spectral_norms", delta.spectral_norms);
        obs.counter("linalg.qr_factorizations_avoided", delta.qr_factorizations_avoided);
        obs.counter("linalg.spectral_norms_cached", delta.spectral_norms_cached);

        Ok(AnalysisReport {
            domain: self.domain.to_string(),
            config,
            noise,
            representation,
            selection,
            selected_mean_vectors,
            metrics,
        })
    }
}

/// Runs the full pipeline (the original entry point, now a thin shim over
/// [`AnalysisRequest`]).
///
/// * `domain` — label for the report;
/// * `names` — event names, aligned with the event axis of `runs`;
/// * `runs` — `runs[r][e][p]`: normalized measurement of event `e` at point
///   `p` in repetition `r` (the layout of `catalyze-cat`'s
///   `MeasurementSet`);
/// * `basis` — the domain's expectation basis (`points` must match `p`);
/// * `signatures` — the metrics to define.
///
/// # Errors
///
/// Propagates linear-algebra failures from the representation and
/// selection stages (shape mismatches, non-finite measurements, a
/// rank-deficient basis).
///
/// # Panics
///
/// Keeps the legacy contract: mis-shaped `names`/`runs` arguments panic.
/// Use [`AnalysisRequest`] to get every shape problem back as a
/// recoverable [`AnalysisError`] instead.
pub fn analyze(
    domain: &str,
    names: &[String],
    runs: &[Vec<Vec<f64>>],
    basis: &Basis,
    signatures: &[MetricSignature],
    config: AnalysisConfig,
) -> Result<AnalysisReport, LinalgError> {
    let request = AnalysisRequest::new()
        .domain(domain)
        .events(names)
        .runs(runs)
        .basis(basis)
        .signatures(signatures)
        .config(config);
    match request.run() {
        Ok(report) => Ok(report),
        Err(AnalysisError::Linalg(e)) => Err(e),
        // lint: allow(panic): the legacy entry point documents its panic on mis-shaped input
        Err(e) => panic!("analyze: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::branch_basis;
    use crate::signature::branch_signatures;
    use catalyze_obs::TraceCollector;

    /// Synthetic branch-domain measurements: the four real events plus a
    /// noisy event, an all-zero event, and an unrepresentable constant.
    fn synthetic_branch_runs() -> (Vec<String>, Vec<Vec<Vec<f64>>>) {
        let b = branch_basis();
        let col = |j: usize| -> Vec<f64> { (0..11).map(|i| b.matrix[(i, j)]).collect() };
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let constant = vec![3.0; 11];
        let names: Vec<String> = [
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_INST_RETIRED:ALL_BRANCHES",
            "NOISY_CYCLES",
            "ZERO_EVENT",
            "INT_CONSTANT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let runs: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|r| {
                let jitter = 1.0 + 0.01 * r as f64;
                vec![
                    col(4),
                    col(1),
                    col(2),
                    all.clone(),
                    col(1).iter().map(|v| v * 1000.0 * jitter).collect(),
                    vec![0.0; 11],
                    constant.clone(),
                ]
            })
            .collect();
        (names, runs)
    }

    #[test]
    fn full_pipeline_on_synthetic_branch_data() {
        let (names, runs) = synthetic_branch_runs();
        let report = AnalysisRequest::new()
            .domain("branch")
            .events(&names)
            .runs(&runs)
            .basis(&branch_basis())
            .signatures(&branch_signatures())
            .config(AnalysisConfig::branch())
            .run()
            .unwrap();
        // Noise stage: noisy and zero events gone.
        assert_eq!(report.noise.kept().len(), 5);
        assert_eq!(report.noise.discarded_zero(), vec![5]);
        assert_eq!(report.noise.discarded_noisy(), vec![4]);
        // Representation: constant event rejected.
        assert_eq!(report.representation.rejected.len(), 1);
        assert_eq!(report.representation.rejected[0].name, "INT_CONSTANT");
        // Selection: exactly the paper's four events.
        assert_eq!(report.selection.events.len(), 4);
        // Metrics: six composable, one (Executed) not.
        assert_eq!(report.metrics.len(), 7);
        assert_eq!(report.composable_metrics().len(), 6);
        let ex = report.metric("Conditional Branches Executed").unwrap();
        assert!((ex.error - 1.0).abs() < 1e-9);
        // Selected mean vectors align with the selection.
        assert_eq!(report.selected_mean_vectors.len(), 4);
        assert_eq!(report.selected_mean_vectors[0].len(), 11);
    }

    #[test]
    fn traced_run_records_spans_funnel_and_counters() {
        let (names, runs) = synthetic_branch_runs();
        let trace = TraceCollector::new();
        let report = AnalysisRequest::new()
            .domain("branch")
            .events(&names)
            .runs(&runs)
            .basis(&branch_basis())
            .signatures(&branch_signatures())
            .config(AnalysisConfig::branch())
            .observer(&trace)
            .run()
            .unwrap();
        // Root + four stage spans.
        assert_eq!(trace.span_count(), 5);
        // Every funnel record reconciles: kept + dropped == in.
        let funnel = trace.funnel_records();
        assert_eq!(funnel.len(), STAGES.len());
        assert!(funnel.iter().all(|f| f.reconciles()), "{funnel:?}");
        // One record per stage, emitted in STAGES order under exactly the
        // canonical labels (the registry and the diff tool key on them).
        let stages: Vec<&str> = funnel.iter().map(|f| f.stage.as_str()).collect();
        assert_eq!(stages, STAGES.to_vec());
        let span_names: Vec<String> = trace.span_records().iter().map(|s| s.name.clone()).collect();
        for stage in STAGES {
            assert!(span_names.iter().any(|n| n == stage), "span for {stage}: {span_names:?}");
        }
        assert_eq!(funnel[0].stage, "noise");
        assert_eq!(funnel[0].events_in, names.len());
        assert_eq!(funnel[0].kept, 5);
        // The representation stage solves one least-squares system per
        // surviving event; define solves one per signature.
        assert_eq!(trace.counter_value("represent.lstsq_solves"), Some(5));
        assert_eq!(trace.counter_value("define.lstsq_solves"), Some(7));
        assert!(trace.counter_value("linalg.lstsq_solves").unwrap() >= 12);
        assert_eq!(trace.counter_value("linalg.spqrcp_runs"), Some(1));
        // Each hot stage factors its matrix and takes its spectral norm
        // exactly once; every further solve reuses both.
        assert_eq!(trace.counter_value("represent.qr_factorizations"), Some(1));
        assert_eq!(trace.counter_value("represent.spectral_norms"), Some(1));
        assert_eq!(trace.counter_value("define.qr_factorizations"), Some(1));
        assert_eq!(trace.counter_value("define.spectral_norms"), Some(1));
        // 4 reuses in represent (5 solves) + 6 in define (7 solves).
        assert!(trace.counter_value("linalg.qr_factorizations_avoided").unwrap() >= 10);
        assert!(trace.counter_value("linalg.spectral_norms_cached").unwrap() >= 10);
        // Tracing must not change the analysis itself.
        assert_eq!(report.metrics.len(), 7);
    }

    #[test]
    fn builder_shape_errors_are_recoverable() {
        let (names, runs) = synthetic_branch_runs();
        let b = branch_basis();
        let sigs = branch_signatures();

        let err = AnalysisRequest::new().events(&names).runs(&runs).run().unwrap_err();
        assert_eq!(err, AnalysisError::MissingBasis);

        let err = AnalysisRequest::new().events(&names).basis(&b).run().unwrap_err();
        assert_eq!(err, AnalysisError::EmptyRuns);

        let short = vec![names[0].clone()];
        let err = AnalysisRequest::new()
            .events(&short)
            .runs(&runs)
            .basis(&b)
            .signatures(&sigs)
            .run()
            .unwrap_err();
        assert!(
            matches!(err, AnalysisError::Shape { context: "events per run", expected: 1, got: 7 }),
            "{err:?}"
        );

        let ragged = vec![vec![vec![1.0; 4]]];
        let one = vec!["X".to_string()];
        let err = AnalysisRequest::new().events(&one).runs(&ragged).basis(&b).run().unwrap_err();
        assert!(
            matches!(err, AnalysisError::Shape { expected: 11, got: 4, .. }),
            "points vs basis rows: {err:?}"
        );
    }

    #[test]
    #[should_panic(expected = "no measurement runs")]
    fn legacy_analyze_keeps_panicking_on_empty_runs() {
        let _ =
            analyze("x", &[], &[], &branch_basis(), &branch_signatures(), AnalysisConfig::branch());
    }

    #[test]
    fn config_presets() {
        assert_eq!(AnalysisConfig::cpu_flops().tau, 1e-10);
        assert_eq!(AnalysisConfig::dcache().tau, 1e-1);
        assert_eq!(AnalysisConfig::dcache().alpha, 5e-2);
        assert_eq!(AnalysisConfig::branch().alpha, 5e-4);
        assert_eq!(AnalysisConfig::gpu_flops().alpha, 5e-4);
        assert_eq!(AnalysisConfig::default(), AnalysisConfig::cpu_flops());
    }

    #[test]
    fn config_set_overrides() {
        let mut c = AnalysisConfig::branch();
        assert!(c.set("tau", 1e-3));
        assert!(c.set("alpha", 2e-2));
        assert!(c.set("representation_threshold", 0.5));
        assert!(c.set("rounding_tol", 0.1));
        assert!(c.set("composability_threshold", 1e-2));
        assert_eq!(c.tau, 1e-3);
        assert_eq!(c.alpha, 2e-2);
        assert_eq!(c.representation_threshold, 0.5);
        assert_eq!(c.rounding_tol, 0.1);
        assert_eq!(c.composability_threshold, 1e-2);
        assert!(!c.set("not_a_key", 1.0));
        assert_eq!(AnalysisConfig::keys().len(), 5);
    }
}
