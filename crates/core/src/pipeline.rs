//! The end-to-end analysis pipeline: noise filter → expectation-basis
//! representation → specialized-QRCP selection → least-squares metric
//! definition.

use crate::basis::Basis;
use crate::define::{define_metrics, DefinedMetric};
use crate::noise::{analyze_noise, NoiseReport};
use crate::normalize::{represent, Representation};
use crate::select::{select_events, Selection};
use crate::signature::MetricSignature;
use catalyze_linalg::LinalgError;
use serde::{Deserialize, Serialize};

/// Tuning of the four pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Noise threshold τ for the variability filter (§IV).
    pub tau: f64,
    /// Specialized-QRCP tolerance α (§V).
    pub alpha: f64,
    /// Maximum relative residual for an event to count as representable in
    /// the expectation basis (§III-B).
    pub representation_threshold: f64,
    /// Coefficient rounding tolerance (§VI-D).
    pub rounding_tol: f64,
    /// Backward error below which a metric counts as composable.
    pub composability_threshold: f64,
}

impl AnalysisConfig {
    /// Paper settings for the CPU-FLOPs events: τ = 1e-10, α = 5e-4.
    pub fn cpu_flops() -> Self {
        Self {
            tau: 1e-10,
            alpha: 5e-4,
            representation_threshold: 0.05,
            rounding_tol: 0.02,
            composability_threshold: 1e-6,
        }
    }

    /// Paper settings for the branching events: τ = 1e-10, α = 5e-4.
    pub fn branch() -> Self {
        Self::cpu_flops()
    }

    /// Paper settings for the GPU-FLOPs events: τ = 1e-10, α = 5e-4.
    pub fn gpu_flops() -> Self {
        Self::cpu_flops()
    }

    /// Paper settings for the data-cache events: τ = 1e-1, α = 5e-2, with a
    /// representation threshold loose enough for the noisy hit/miss curves
    /// (the later QR and rounding stages absorb the slack — §IV's argument
    /// for lenient early filtering).
    pub fn dcache() -> Self {
        Self {
            tau: 1e-1,
            alpha: 5e-2,
            representation_threshold: 0.25,
            rounding_tol: 0.05,
            composability_threshold: 1e-3,
        }
    }

    /// Settings for the store-path extension domain: write-side cache
    /// events share the load side's noise profile.
    pub fn dstore() -> Self {
        Self::dcache()
    }

    /// Settings for the data-TLB extension domain: page-walk counters are
    /// about as noisy as cache events, and the miss-region hit rates leave
    /// a few percent of systematic slack, so the cache-style lenient
    /// thresholds apply.
    pub fn dtlb() -> Self {
        Self::dcache()
    }
}

/// Everything the pipeline produced for one benchmark domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Benchmark/domain label.
    pub domain: String,
    /// The stage configuration used.
    pub config: AnalysisConfig,
    /// Stage 1: variability verdicts.
    pub noise: NoiseReport,
    /// Stage 2: expectation-basis representation of surviving events.
    pub representation: Representation,
    /// Stage 3: independent events chosen by the specialized QRCP.
    pub selection: Selection,
    /// Mean measurement vectors of the selected events (point space),
    /// aligned with `selection.events` — used to draw Figure-3-style
    /// curves.
    pub selected_mean_vectors: Vec<Vec<f64>>,
    /// Stage 4: metric definitions for every requested signature.
    pub metrics: Vec<DefinedMetric>,
}

impl AnalysisReport {
    /// Metrics that are composable under the configured threshold.
    pub fn composable_metrics(&self) -> Vec<&DefinedMetric> {
        self.metrics
            .iter()
            .filter(|m| m.is_composable(self.config.composability_threshold))
            .collect()
    }

    /// Metric by (prefix of) name.
    pub fn metric(&self, name: &str) -> Option<&DefinedMetric> {
        self.metrics.iter().find(|m| m.metric.starts_with(name))
    }
}

/// Runs the full pipeline.
///
/// * `domain` — label for the report;
/// * `names` — event names, aligned with the event axis of `runs`;
/// * `runs` — `runs[r][e][p]`: normalized measurement of event `e` at point
///   `p` in repetition `r` (the layout of `catalyze-cat`'s
///   `MeasurementSet`);
/// * `basis` — the domain's expectation basis (`points` must match `p`);
/// * `signatures` — the metrics to define.
///
/// # Errors
///
/// Propagates linear-algebra failures from the representation and
/// selection stages (shape mismatches, non-finite measurements, a
/// rank-deficient basis). Mis-shaped `names`/`runs` arguments are a
/// programming error and still panic.
pub fn analyze(
    domain: &str,
    names: &[String],
    runs: &[Vec<Vec<f64>>],
    basis: &Basis,
    signatures: &[MetricSignature],
    config: AnalysisConfig,
) -> Result<AnalysisReport, LinalgError> {
    assert!(!runs.is_empty(), "analyze: no measurement runs");
    assert_eq!(runs[0].len(), names.len(), "analyze: names/runs event mismatch");

    // Stage 1: variability filter (Eq. 4, threshold τ).
    let vectors_by_event: Vec<Vec<&[f64]>> =
        (0..names.len()).map(|e| runs.iter().map(|r| r[e].as_slice()).collect()).collect();
    let noise = analyze_noise(names, &vectors_by_event, config.tau);

    // Stage 2: represent surviving events in the expectation basis, using
    // the mean measurement vector across repetitions (for noise-free events
    // all repetitions are identical; for noisy ones the mean is the natural
    // summary).
    let kept = noise.kept();
    let mean_of = |e: usize| -> Vec<f64> {
        let np = runs[0][e].len();
        let mut mean = vec![0.0; np];
        for run in runs {
            for (m, &v) in mean.iter_mut().zip(&run[e]) {
                *m += v;
            }
        }
        let n = runs.len() as f64;
        mean.iter_mut().for_each(|m| *m /= n);
        mean
    };
    let inputs: Vec<(usize, String, Vec<f64>)> =
        kept.iter().map(|&e| (e, names[e].clone(), mean_of(e))).collect();
    let representation = represent(basis, &inputs, config.representation_threshold)?;

    // Stage 3: specialized QRCP.
    let selection = select_events(&representation, config.alpha)?;
    let selected_mean_vectors: Vec<Vec<f64>> =
        selection.events.iter().map(|e| mean_of(e.index)).collect();

    // Stage 4: least-squares metric definitions.
    let metrics = define_metrics(&selection, signatures, config.rounding_tol);

    Ok(AnalysisReport {
        domain: domain.to_string(),
        config,
        noise,
        representation,
        selection,
        selected_mean_vectors,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::branch_basis;
    use crate::signature::branch_signatures;

    /// Synthetic branch-domain measurements: the four real events plus a
    /// noisy event, an all-zero event, and an unrepresentable constant.
    fn synthetic_branch_runs() -> (Vec<String>, Vec<Vec<Vec<f64>>>) {
        let b = branch_basis();
        let col = |j: usize| -> Vec<f64> { (0..11).map(|i| b.matrix[(i, j)]).collect() };
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let constant = vec![3.0; 11];
        let names: Vec<String> = [
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_INST_RETIRED:ALL_BRANCHES",
            "NOISY_CYCLES",
            "ZERO_EVENT",
            "INT_CONSTANT",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let runs: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|r| {
                let jitter = 1.0 + 0.01 * r as f64;
                vec![
                    col(4),
                    col(1),
                    col(2),
                    all.clone(),
                    col(1).iter().map(|v| v * 1000.0 * jitter).collect(),
                    vec![0.0; 11],
                    constant.clone(),
                ]
            })
            .collect();
        (names, runs)
    }

    #[test]
    fn full_pipeline_on_synthetic_branch_data() {
        let (names, runs) = synthetic_branch_runs();
        let report = analyze(
            "branch",
            &names,
            &runs,
            &branch_basis(),
            &branch_signatures(),
            AnalysisConfig::branch(),
        )
        .unwrap();
        // Noise stage: noisy and zero events gone.
        assert_eq!(report.noise.kept().len(), 5);
        assert_eq!(report.noise.discarded_zero(), vec![5]);
        assert_eq!(report.noise.discarded_noisy(), vec![4]);
        // Representation: constant event rejected.
        assert_eq!(report.representation.rejected.len(), 1);
        assert_eq!(report.representation.rejected[0].name, "INT_CONSTANT");
        // Selection: exactly the paper's four events.
        assert_eq!(report.selection.events.len(), 4);
        // Metrics: six composable, one (Executed) not.
        assert_eq!(report.metrics.len(), 7);
        assert_eq!(report.composable_metrics().len(), 6);
        let ex = report.metric("Conditional Branches Executed").unwrap();
        assert!((ex.error - 1.0).abs() < 1e-9);
        // Selected mean vectors align with the selection.
        assert_eq!(report.selected_mean_vectors.len(), 4);
        assert_eq!(report.selected_mean_vectors[0].len(), 11);
    }

    #[test]
    #[should_panic(expected = "no measurement runs")]
    fn empty_runs_panics() {
        let _ =
            analyze("x", &[], &[], &branch_basis(), &branch_signatures(), AnalysisConfig::branch());
    }

    #[test]
    fn config_presets() {
        assert_eq!(AnalysisConfig::cpu_flops().tau, 1e-10);
        assert_eq!(AnalysisConfig::dcache().tau, 1e-1);
        assert_eq!(AnalysisConfig::dcache().alpha, 5e-2);
        assert_eq!(AnalysisConfig::branch().alpha, 5e-4);
        assert_eq!(AnalysisConfig::gpu_flops().alpha, 5e-4);
    }
}
