//! Gnuplot script emission: turns the figure data files written by the
//! reproduction harness into ready-to-render plots matching the paper's
//! Figure 2 (log-scale variability scatter with the τ line) and Figure 3
//! (signature vs measured-combination step curves).

use std::fmt::Write as _;

/// Gnuplot script for one Figure-2 panel. `data_file` is the `.dat` file
/// produced by [`crate::report::figure2_data`]; the script draws the sorted
/// variabilities on a log axis with the τ threshold line.
pub fn figure2_script(title: &str, data_file: &str, tau: f64, output: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# gnuplot script — regenerate with the repro harness");
    let _ = writeln!(s, "set terminal pngcairo size 900,600");
    let _ = writeln!(s, "set output '{output}'");
    let _ = writeln!(s, "set title '{}'", escape(title));
    let _ = writeln!(s, "set xlabel 'Event Index'");
    let _ = writeln!(s, "set ylabel 'Max. RNMSE Variability'");
    let _ = writeln!(s, "set logscale y");
    let _ = writeln!(s, "set yrange [1e-16:1e2]");
    let _ = writeln!(s, "set format y '10^{{%L}}'");
    let _ = writeln!(s, "set key top left");
    let _ = writeln!(s, "tau = {tau:e}");
    let _ = writeln!(
        s,
        "plot '{data_file}' using 1:2 with points pt 7 ps 0.6 title 'Sorted Event Variabilities', \\"
    );
    let _ = writeln!(s, "     tau with lines lw 2 dt 2 title sprintf('tau = %.1e', tau)");
    s
}

/// Gnuplot script for one Figure-3 panel. `data_file` comes from
/// [`crate::report::figure3_data`] (columns: point, label, signature,
/// raw combination, rounded combination).
pub fn figure3_script(title: &str, data_file: &str, output: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# gnuplot script — regenerate with the repro harness");
    let _ = writeln!(s, "set terminal pngcairo size 900,600");
    let _ = writeln!(s, "set output '{output}'");
    let _ = writeln!(s, "set title '{}'", escape(title));
    let _ = writeln!(s, "set xlabel 'Pointer Chain Size'");
    let _ = writeln!(s, "set ylabel 'Normalized Event Counts'");
    let _ = writeln!(s, "set yrange [0:3]");
    let _ = writeln!(s, "set xtics rotate by -45");
    let _ = writeln!(s, "set key top right");
    let _ = writeln!(
        s,
        "plot '{data_file}' using 1:4:xtic(2) with linespoints pt 5 title 'Raw-event combination', \\"
    );
    let _ = writeln!(
        s,
        "     '{data_file}' using 1:3 with linespoints pt 9 dt 2 title 'Signature', \\"
    );
    let _ =
        writeln!(s, "     '{data_file}' using 1:5 with points pt 2 title 'Rounded combination'");
    s
}

fn escape(s: &str) -> String {
    s.replace('\'', "''").replace('_', "\\_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_script_structure() {
        let s = figure2_script("CAT Branching Benchmark", "fig2a.dat", 1e-10, "fig2a.png");
        assert!(s.contains("set logscale y"));
        assert!(s.contains("tau = 1e-10"));
        assert!(s.contains("'fig2a.dat'"));
        assert!(s.contains("set output 'fig2a.png'"));
        assert!(s.contains("Sorted Event Variabilities"));
    }

    #[test]
    fn figure3_script_structure() {
        let s = figure3_script("L1 Hits", "fig3a.dat", "fig3a.png");
        assert!(s.contains("using 1:4:xtic(2)"));
        assert!(s.contains("Signature"));
        assert!(s.contains("Rounded combination"));
        assert!(s.contains("set yrange [0:3]"));
    }

    #[test]
    fn titles_are_escaped() {
        let s = figure2_script("it's L1_HIT", "d.dat", 1e-1, "o.png");
        assert!(s.contains("it''s L1\\_HIT"));
    }
}
