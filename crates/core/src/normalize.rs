//! Event-measurement normalization (paper §III-B): representing each raw
//! event in the expectation basis by solving `E · x_e = m_e`.

use crate::basis::Basis;
use catalyze_linalg::{FactoredLstsq, LinalgError, Matrix};
use serde::{Deserialize, Serialize};

/// One event successfully represented in the expectation basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint: allow(dead_api): row type in Representation's public fields; part of the normalize result surface
pub struct RepresentedEvent {
    /// Index into the original measurement set's event axis.
    pub index: usize,
    /// Event name.
    pub name: String,
    /// Representation `x_e` in basis coordinates.
    pub coords: Vec<f64>,
    /// Relative least-squares residual `‖E x_e − m_e‖ / ‖m_e‖`.
    pub residual: f64,
}

/// An event rejected because the basis cannot express it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint: allow(dead_api): row type in Representation's public fields; records why an event was dropped
pub struct RejectedEvent {
    /// Index into the original measurement set's event axis.
    pub index: usize,
    /// Event name.
    pub name: String,
    /// Relative residual that exceeded the threshold.
    pub residual: f64,
}

/// Result of representing a set of events in an expectation basis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Representation {
    /// Events expressible in the basis, in input order.
    pub kept: Vec<RepresentedEvent>,
    /// Events the basis cannot express.
    pub rejected: Vec<RejectedEvent>,
    /// The relative-residual threshold used.
    pub threshold: f64,
}

impl Representation {
    /// The matrix `X` whose columns are the kept events' representations
    /// (`basis-dim x kept-events`). `None` when nothing survived.
    pub fn x_matrix(&self) -> Option<Matrix> {
        if self.kept.is_empty() {
            return None;
        }
        let cols: Vec<Vec<f64>> = self.kept.iter().map(|e| e.coords.clone()).collect();
        // lint: allow(panic, reachable_panic): representation coordinates share the basis dimension
        Some(Matrix::from_columns(&cols).expect("uniform coordinate length"))
    }

    /// Names of the kept events, aligned with `x_matrix` columns.
    pub fn kept_names(&self) -> Vec<&str> {
        self.kept.iter().map(|e| e.name.as_str()).collect()
    }
}

/// Represents each `(index, name, mean measurement vector)` in the basis.
///
/// Events whose relative residual exceeds `threshold` are rejected — they
/// measure something the benchmark's ideal-event space does not span (e.g.
/// loop-header integer traffic under the FLOPs basis).
///
/// The basis matrix `E` is factored once for the whole event set
/// ([`FactoredLstsq`]) and every measurement vector is solved against the
/// shared factorization — the same coordinates, bit for bit, as solving
/// each event independently, at one QR and one spectral norm total.
///
/// # Errors
///
/// Propagates the least-squares error when a measurement vector's length
/// does not match the basis points, contains non-finite values, or the
/// basis matrix is rank deficient.
pub fn represent(
    basis: &Basis,
    events: &[(usize, String, Vec<f64>)],
    threshold: f64,
) -> Result<Representation, LinalgError> {
    let mut kept = Vec::new();
    let mut rejected = Vec::new();
    if !events.is_empty() {
        let factored = FactoredLstsq::factor(&basis.matrix)?;
        let rhs: Vec<&[f64]> = events.iter().map(|(_, _, m)| m.as_slice()).collect();
        let solutions = factored.solve_many(&rhs)?;
        for ((index, name, _), sol) in events.iter().zip(solutions) {
            if sol.relative_residual <= threshold {
                kept.push(RepresentedEvent {
                    index: *index,
                    name: name.clone(),
                    coords: sol.x,
                    residual: sol.relative_residual,
                });
            } else {
                rejected.push(RejectedEvent {
                    index: *index,
                    name: name.clone(),
                    residual: sol.relative_residual,
                });
            }
        }
    }
    Ok(Representation { kept, rejected, threshold })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{branch_basis, cpu_flops_basis};

    #[test]
    fn exact_expectation_is_represented_exactly() {
        let b = branch_basis();
        // The CR column itself.
        let cr: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)]).collect();
        let rep = represent(&b, &[(0, "COND".into(), cr)], 1e-6).unwrap();
        assert_eq!(rep.kept.len(), 1);
        let coords = &rep.kept[0].coords;
        assert!((coords[1] - 1.0).abs() < 1e-10);
        for (i, c) in coords.iter().enumerate() {
            if i != 1 {
                assert!(c.abs() < 1e-10, "coord {i} = {c}");
            }
        }
        assert!(rep.kept[0].residual < 1e-12);
    }

    #[test]
    fn linear_combination_is_represented() {
        let b = branch_basis();
        // ALL_BRANCHES = CR + D.
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let rep = represent(&b, &[(3, "ALL".into(), all)], 1e-6).unwrap();
        assert_eq!(rep.kept.len(), 1);
        let c = &rep.kept[0].coords;
        assert!((c[1] - 1.0).abs() < 1e-10);
        assert!((c[3] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn unrepresentable_event_is_rejected() {
        let b = cpu_flops_basis();
        // Constant loop-overhead vector: not in the span of 24/48/96 triples.
        let constant = vec![2.0; 48];
        let rep = represent(&b, &[(7, "INT".into(), constant)], 0.05).unwrap();
        assert!(rep.kept.is_empty());
        assert_eq!(rep.rejected.len(), 1);
        assert!(rep.rejected[0].residual > 0.1);
    }

    #[test]
    fn fp_event_with_fma_double_count_is_represented() {
        let b = cpu_flops_basis();
        // SCALAR_DOUBLE: DSCAL triple at 24/48/96 plus DSCAL_FMA triple at
        // 2 x (12/24/48) = 24/48/96.
        let mut m = vec![0.0; 48];
        let dscal = b.index_of("DSCAL").unwrap();
        let dscal_fma = b.index_of("DSCAL_FMA").unwrap();
        for (l, v) in [24.0, 48.0, 96.0].iter().enumerate() {
            m[3 * dscal + l] = *v;
            m[3 * dscal_fma + l] = *v;
        }
        let rep = represent(&b, &[(0, "SCALAR_DOUBLE".into(), m)], 1e-6).unwrap();
        assert_eq!(rep.kept.len(), 1);
        let c = &rep.kept[0].coords;
        assert!((c[dscal] - 1.0).abs() < 1e-10);
        assert!((c[dscal_fma] - 2.0).abs() < 1e-10, "FMA double-count -> coordinate 2");
    }

    #[test]
    fn x_matrix_assembles_columns() {
        let b = branch_basis();
        let cr: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)]).collect();
        let t: Vec<f64> = (0..11).map(|i| b.matrix[(i, 2)]).collect();
        let rep = represent(&b, &[(0, "CR".into(), cr), (1, "T".into(), t)], 1e-6).unwrap();
        let x = rep.x_matrix().unwrap();
        assert_eq!(x.shape(), (5, 2));
        assert_eq!(rep.kept_names(), vec!["CR", "T"]);
        let empty = Representation { kept: vec![], rejected: vec![], threshold: 0.1 };
        assert!(empty.x_matrix().is_none());
    }

    #[test]
    fn wrong_length_is_an_error() {
        let b = branch_basis();
        let err = represent(&b, &[(0, "bad".into(), vec![1.0; 3])], 0.1).unwrap_err();
        assert!(matches!(err, LinalgError::ShapeMismatch { .. }), "got {err:?}");
    }
}
