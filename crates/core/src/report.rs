//! Rendering of analysis results: paper-style text tables and
//! figure-data series (gnuplot-compatible columns).

use crate::basis::Basis;
use crate::define::DefinedMetric;
use crate::noise::NoiseReport;
use crate::pipeline::AnalysisReport;
use crate::signature::MetricSignature;
use std::fmt::Write as _;

/// Renders a metric-definition table in the style of Tables V–VIII:
/// one row per metric with its raw-event combination and backward error.
pub fn metrics_table(title: &str, metrics: &[DefinedMetric]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    for m in metrics {
        let _ = writeln!(out, "{}", m.metric);
        let mut first = true;
        for (event, &c) in m.events.iter().zip(&m.coefficients) {
            let sign = if c < 0.0 {
                "- "
            } else if first {
                ""
            } else {
                "+ "
            };
            let _ = writeln!(out, "    {sign}{:.6e} x {event}", c.abs());
            first = false;
        }
        let _ = writeln!(out, "    error: {:.2e}", m.error);
        if let Some(re) = m.rounded_error {
            let _ = writeln!(out, "    rounded error: {re:.2e}");
        }
    }
    out
}

/// Renders a signature table in the style of Tables I–IV.
pub fn signatures_table(title: &str, basis: &Basis, signatures: &[MetricSignature]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = writeln!(out, "basis: ({})", basis.labels.join(","));
    for s in signatures {
        let coeffs: Vec<String> = s.coefficients.iter().map(|c| format_coeff(*c)).collect();
        let _ = writeln!(out, "{:<32} ({})", s.name, coeffs.join(","));
    }
    out
}

fn format_coeff(c: f64) -> String {
    // lint: allow(float_cmp): trunc-equality is the exact whole-number test
    if c == c.trunc() && c.abs() < 1e15 {
        // lint: allow(lossy_cast): whole-number check above makes the cast exact
        format!("{}", c as i64)
    } else {
        format!("{c}")
    }
}

/// Figure-2 data: sorted variabilities, one `index value` line per event,
/// with zero variabilities clamped to machine epsilon (the paper plots
/// them at ε for the sake of the log axis).
pub fn figure2_data(report: &NoiseReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# index  max_rnmse   (tau = {:.1e})", report.tau);
    for (i, v) in report.sorted_variabilities().iter().enumerate() {
        // lint: allow(float_cmp): exact zero is the sentinel replaced for the log plot
        let plotted = if *v == 0.0 { f64::EPSILON } else { *v };
        let _ = writeln!(out, "{i} {plotted:.6e}");
    }
    out
}

/// A crude terminal rendition of Figure 2: a log-scale scatter of sorted
/// variabilities with the τ cut marked.
pub fn figure2_ascii(report: &NoiseReport, width: usize) -> String {
    let sorted = report.sorted_variabilities();
    if sorted.is_empty() {
        return "(no events)\n".to_string();
    }
    let rows = 12usize;
    let log_min = -16.0;
    let log_max = 2.0;
    let mut grid = vec![vec![' '; width]; rows];
    let n = sorted.len();
    for (i, v) in sorted.iter().enumerate() {
        let x = i * (width - 1) / n.max(1);
        let lv = v.max(f64::EPSILON).log10().clamp(log_min, log_max);
        let y = ((lv - log_min) / (log_max - log_min) * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - y][x] = '*';
    }
    let tau_row = {
        let lt = report.tau.log10().clamp(log_min, log_max);
        rows - 1 - (((lt - log_min) / (log_max - log_min)) * (rows - 1) as f64).round() as usize
    };
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        let marker = if r == tau_row { "tau>" } else { "    " };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{marker}|{line}");
    }
    let _ = writeln!(out, "    +{}", "-".repeat(width));
    out
}

/// Figure-3 data for one metric: per measurement point, the signature value
/// (what the ideal combination should read) and the measured combination of
/// raw events, both already normalized per access.
///
/// Columns: `point_index  signature  raw_combination  rounded_combination`.
pub fn figure3_data(
    report: &AnalysisReport,
    basis: &Basis,
    signature: &MetricSignature,
    point_labels: &[String],
) -> String {
    let metric = report
        .metrics
        .iter()
        .find(|m| m.metric == signature.name)
        // lint: allow(panic): the report renders metrics the pipeline just defined
        .expect("metric was defined by the pipeline");
    let sig_curve = basis
        .matrix
        .matvec(&signature.coefficients)
        // lint: allow(panic): signature and basis come from the same domain
        .expect("signature dimension matches basis");
    let mut out = String::new();
    let _ = writeln!(out, "# {}", signature.name);
    let _ = writeln!(out, "# point  label  signature  raw_combo  rounded_combo");
    for p in 0..sig_curve.len() {
        let raw: f64 = metric
            .coefficients
            .iter()
            .zip(&report.selected_mean_vectors)
            .map(|(&c, v)| c * v[p])
            .sum();
        let rounded: f64 = metric
            .rounded
            .iter()
            .zip(metric.coefficients.iter())
            .zip(&report.selected_mean_vectors)
            .map(|((r, &c), v)| r.unwrap_or(c) * v[p])
            .sum();
        let label = point_labels.get(p).map(String::as_str).unwrap_or("?");
        let _ = writeln!(out, "{p} {label} {:.6} {raw:.6} {rounded:.6}", sig_curve[p]);
    }
    out
}

/// Renders the selection stage (§V-A..D): which events the QR chose.
pub fn selection_table(report: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== selected events ({}, alpha = {:.1e}, {} candidates, cond(X^) = {}) ==",
        report.domain,
        report.selection.alpha,
        report.selection.candidates,
        report.selection.condition_number().map_or("n/a".to_string(), |k| format!("{k:.2}")),
    );
    for e in &report.selection.events {
        let _ = writeln!(
            out,
            "  {:<52} score {:>8.3}  |residual| {:>8.4}",
            e.name, e.score, e.residual_norm
        );
    }
    out
}

/// One-paragraph summary of the noise stage.
pub fn noise_summary(report: &NoiseReport) -> String {
    format!(
        "events: {} total, {} kept (variability <= {:.0e}), {} noisy, {} all-zero\n",
        report.events.len(),
        report.kept().len(),
        report.tau,
        report.discarded_noisy().len(),
        report.discarded_zero().len(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::branch_basis;
    use crate::noise::{analyze_noise, EventVariability};
    use crate::pipeline::{AnalysisConfig, AnalysisRequest};
    use crate::signature::branch_signatures;

    fn report() -> AnalysisReport {
        let b = branch_basis();
        let col = |j: usize| -> Vec<f64> { (0..11).map(|i| b.matrix[(i, j)]).collect() };
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let names: Vec<String> = [
            "BR_MISP_RETIRED",
            "BR_INST_RETIRED:COND",
            "BR_INST_RETIRED:COND_TAKEN",
            "BR_INST_RETIRED:ALL_BRANCHES",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let runs = vec![vec![col(4), col(1), col(2), all]];
        let signatures = branch_signatures();
        AnalysisRequest::new()
            .domain("branch")
            .events(&names)
            .runs(&runs)
            .basis(&b)
            .signatures(&signatures)
            .config(AnalysisConfig::branch())
            .run()
            .unwrap()
    }

    #[test]
    fn metrics_table_renders_signs_and_errors() {
        let r = report();
        let t = metrics_table("Branching Metrics", &r.metrics);
        assert!(t.contains("Unconditional Branches."));
        assert!(t.contains("error: "));
        assert!(t.contains("- 1.0"), "negative COND coefficient rendered with sign:\n{t}");
    }

    #[test]
    fn signatures_table_renders_integers() {
        let t = signatures_table("Table III", &branch_basis(), &branch_signatures());
        assert!(t.contains("(0,0,0,1,0)"), "{t}");
        assert!(t.contains("(0,1,-1,0,0)"));
        assert!(t.contains("basis: (CE,CR,T,D,M)"));
    }

    #[test]
    fn figure2_data_is_sorted_and_eps_clamped() {
        let a = [1.0, 1.0];
        let b = [1.2, 0.8];
        let names = vec!["exact".to_string(), "noisy".to_string()];
        let vectors = vec![vec![a.as_slice(), a.as_slice()], vec![a.as_slice(), b.as_slice()]];
        let nr = analyze_noise(&names, &vectors, 1e-10);
        let data = figure2_data(&nr);
        let lines: Vec<&str> = data.lines().skip(1).collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("2.2"), "zero clamps to eps ~2.2e-16: {}", lines[0]);
    }

    #[test]
    fn figure2_ascii_marks_tau() {
        let nr = NoiseReport {
            events: vec![EventVariability { name: "a".into(), index: 0, variability: Some(1e-3) }],
            tau: 1e-10,
        };
        let art = figure2_ascii(&nr, 40);
        assert!(art.contains("tau>"));
        assert!(art.contains('*'));
        let empty = NoiseReport { events: vec![], tau: 1e-10 };
        assert_eq!(figure2_ascii(&empty, 40), "(no events)\n");
    }

    #[test]
    fn figure3_data_columns() {
        let r = report();
        let b = branch_basis();
        let sigs = branch_signatures();
        let labels: Vec<String> = (0..11).map(|i| format!("k{}", i + 1)).collect();
        let d = figure3_data(&r, &b, &sigs[1], &labels);
        let lines: Vec<&str> = d.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(lines.len(), 11);
        // Conditional Branches Taken at k3 = 2.0: signature equals raw combo.
        let fields: Vec<&str> = lines[2].split_whitespace().collect();
        assert_eq!(fields[1], "k3");
        assert!((fields[2].parse::<f64>().unwrap() - 2.0).abs() < 1e-9);
        assert!((fields[3].parse::<f64>().unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn selection_and_noise_summaries() {
        let r = report();
        let s = selection_table(&r);
        assert!(s.contains("BR_MISP_RETIRED"));
        let n = noise_summary(&r.noise);
        assert!(n.contains("4 total"));
        assert!(n.contains("4 kept"));
    }
}
