//! Independent-event selection (paper §V): the specialized QRCP applied to
//! the representation matrix `X`.

use crate::normalize::Representation;
use catalyze_linalg::{singular_values, specialized_qrcp, LinalgError, Matrix, SpQrcpParams};
use serde::{Deserialize, Serialize};

/// One selected event with its selection diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
// lint: allow(dead_api): row type in Selection's public fields; part of the select result surface
pub struct SelectedEvent {
    /// Index into the original measurement set's event axis.
    pub index: usize,
    /// Event name.
    pub name: String,
    /// Representation coordinates (a column of `X̂`).
    pub coords: Vec<f64>,
    /// Pivot score at selection time.
    pub score: f64,
    /// Residual norm at selection time.
    pub residual_norm: f64,
}

/// Result of the selection stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Selection {
    /// Selected events in pivot order.
    pub events: Vec<SelectedEvent>,
    /// The α tolerance used.
    pub alpha: f64,
    /// Total number of candidate columns offered to the QR.
    pub candidates: usize,
}

impl Selection {
    /// The matrix `X̂` (`basis-dim x selected`). `None` when empty.
    pub fn x_hat(&self) -> Option<Matrix> {
        if self.events.is_empty() {
            return None;
        }
        let cols: Vec<Vec<f64>> = self.events.iter().map(|e| e.coords.clone()).collect();
        // lint: allow(panic, reachable_panic): representation coordinates share the basis dimension
        Some(Matrix::from_columns(&cols).expect("uniform coordinate length"))
    }

    /// Names of the selected events, aligned with `x_hat` columns.
    pub fn names(&self) -> Vec<&str> {
        self.events.iter().map(|e| e.name.as_str()).collect()
    }

    /// 2-norm condition number of `X̂` — a well-conditioned selection is
    /// what makes the subsequent least-squares definitions trustworthy
    /// (`None` for an empty selection, `inf` would indicate the QR let a
    /// dependent column slip through, which its β floor prevents).
    pub fn condition_number(&self) -> Option<f64> {
        let x = self.x_hat()?;
        singular_values(&x).ok().map(|svd| svd.condition_number())
    }
}

/// Runs the specialized QRCP over a representation's `X` matrix.
///
/// Returns an empty selection when the representation kept no events.
///
/// # Errors
///
/// Propagates the QRCP error when `X` contains non-finite values (a
/// representation assembled from unvalidated coordinates).
pub fn select_events(rep: &Representation, alpha: f64) -> Result<Selection, LinalgError> {
    let Some(x) = rep.x_matrix() else {
        return Ok(Selection { events: Vec::new(), alpha, candidates: 0 });
    };
    let result = specialized_qrcp(&x, SpQrcpParams::new(alpha))?;
    let events = result
        .steps
        .iter()
        .map(|step| {
            let e = &rep.kept[step.column];
            SelectedEvent {
                index: e.index,
                name: e.name.clone(),
                coords: e.coords.clone(),
                score: step.score,
                residual_norm: step.residual_norm,
            }
        })
        .collect();
    Ok(Selection { events, alpha, candidates: x.cols() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::branch_basis;
    use crate::normalize::represent;

    fn branch_rep() -> Representation {
        let b = branch_basis();
        let col = |j: usize| -> Vec<f64> { (0..11).map(|i| b.matrix[(i, j)]).collect() };
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let scaled_cr: Vec<f64> = col(1).iter().map(|v| v * 3.0).collect();
        represent(
            &b,
            &[
                (0, "BR_INST_RETIRED:COND".into(), col(1)),
                (1, "BR_INST_RETIRED:COND_TAKEN".into(), col(2)),
                (2, "BR_MISP_RETIRED".into(), col(4)),
                (3, "BR_INST_RETIRED:ALL_BRANCHES".into(), all),
                (4, "SCALED_DUPLICATE".into(), scaled_cr),
            ],
            1e-6,
        )
        .unwrap()
    }

    #[test]
    fn selects_the_four_independent_branch_events() {
        let rep = branch_rep();
        let sel = select_events(&rep, 5e-4).unwrap();
        assert_eq!(sel.candidates, 5);
        assert_eq!(sel.events.len(), 4, "scaled duplicate must be rejected");
        let names = sel.names();
        assert!(names.contains(&"BR_INST_RETIRED:COND"));
        assert!(names.contains(&"BR_INST_RETIRED:COND_TAKEN"));
        assert!(names.contains(&"BR_MISP_RETIRED"));
        assert!(names.contains(&"BR_INST_RETIRED:ALL_BRANCHES"));
        assert!(!names.contains(&"SCALED_DUPLICATE"));
    }

    #[test]
    fn unit_basis_events_selected_before_combinations() {
        let rep = branch_rep();
        let sel = select_events(&rep, 5e-4).unwrap();
        // The three unit-vector representations (score 1) come first;
        // ALL_BRANCHES (score 2 initially, reduced to the D direction after
        // COND is taken) comes last.
        assert_eq!(sel.events[3].name, "BR_INST_RETIRED:ALL_BRANCHES");
    }

    #[test]
    fn x_hat_shape() {
        let rep = branch_rep();
        let sel = select_events(&rep, 5e-4).unwrap();
        let xh = sel.x_hat().unwrap();
        assert_eq!(xh.shape(), (5, 4));
        assert!(xh.rows() >= xh.cols(), "square or overdetermined, per §V");
    }

    #[test]
    fn empty_representation_empty_selection() {
        let rep = Representation { kept: vec![], rejected: vec![], threshold: 0.1 };
        let sel = select_events(&rep, 5e-4).unwrap();
        assert!(sel.events.is_empty());
        assert!(sel.x_hat().is_none());
        assert_eq!(sel.candidates, 0);
    }
}

#[cfg(test)]
mod condition_tests {
    use super::*;

    #[test]
    fn condition_number_of_clean_selection_is_modest() {
        let b = crate::basis::branch_basis();
        let col = |j: usize| -> Vec<f64> { (0..11).map(|i| b.matrix[(i, j)]).collect() };
        let all: Vec<f64> = (0..11).map(|i| b.matrix[(i, 1)] + b.matrix[(i, 3)]).collect();
        let rep = crate::normalize::represent(
            &b,
            &[
                (0, "COND".into(), col(1)),
                (1, "TAKEN".into(), col(2)),
                (2, "MISP".into(), col(4)),
                (3, "ALL".into(), all),
            ],
            1e-6,
        )
        .unwrap();
        let sel = select_events(&rep, 5e-4).unwrap();
        let kappa = sel.condition_number().unwrap();
        assert!(kappa < 10.0, "clean selections are well conditioned, got {kappa}");
        assert!(kappa >= 1.0);
    }

    #[test]
    fn empty_selection_has_no_condition_number() {
        let sel = Selection { events: vec![], alpha: 1e-3, candidates: 0 };
        assert!(sel.condition_number().is_none());
    }
}
