//! # catalyze
//!
//! Automated analysis that maps raw hardware performance events to
//! high-level performance metrics — a from-scratch Rust reproduction of
//! *Automated Data Analysis for Defining Performance Metrics from Raw
//! Hardware Events* (Barry, Danalis, Dongarra; IPDPSW 2024).
//!
//! The pipeline has four stages, one module each:
//!
//! 1. [`noise`] — discard events whose run-to-run variability (maximum
//!    pairwise RNMSE, Eq. 4) exceeds a threshold τ, and events that never
//!    fire;
//! 2. [`normalize`] — represent each surviving event in an *expectation
//!    basis* ([`basis`], §III) by least squares, rejecting events the basis
//!    cannot express;
//! 3. [`select`] — run a specialized column-pivoted QR factorization
//!    (Algorithm 2, implemented in `catalyze-linalg`) that picks the set of
//!    linearly independent events closest to the ideal expectation
//!    patterns;
//! 4. [`define`] — solve `X̂·y = s` for each metric [`signature`]
//!    (Tables I–IV) and judge composability by the backward error (Eq. 5).
//!
//! [`pipeline::AnalysisRequest`] runs all four stages (with optional
//! structured observability via `catalyze-obs`); [`report`] renders
//! paper-style tables and figure data.
//!
//! ```
//! use catalyze::basis::branch_basis;
//! use catalyze::pipeline::{AnalysisConfig, AnalysisRequest};
//! use catalyze::signature::branch_signatures;
//!
//! // Synthetic measurements: one event that behaves exactly like the
//! // "conditional branches retired" expectation.
//! let basis = branch_basis();
//! let cr: Vec<f64> = (0..11).map(|i| basis.matrix[(i, 1)]).collect();
//! let names = vec!["BR_INST_RETIRED:COND".to_string()];
//! let runs = vec![vec![cr]];
//! let signatures = branch_signatures();
//! let report = AnalysisRequest::new()
//!     .domain("branch")
//!     .events(&names)
//!     .runs(&runs)
//!     .basis(&basis)
//!     .signatures(&signatures)
//!     .config(AnalysisConfig::branch())
//!     .run()
//!     .expect("synthetic measurements are finite and well shaped");
//! let retired = report.metric("Conditional Branches Retired").unwrap();
//! assert!(retired.error < 1e-10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod basis;
// lint: allow(dead_api): define-stage surface; define_metric awaits external callers
pub mod define;
pub mod error;
pub mod noise;
pub mod normalize;
pub mod pipeline;
pub mod plot;
pub mod report;
pub mod select;
pub mod signature;
pub mod validate_basis;

pub use basis::{Basis, CacheRegion};
pub use catalyze_linalg::LinalgError;
pub use define::DefinedMetric;
pub use error::AnalysisError;
pub use noise::{max_rnmse, NoiseReport};
pub use normalize::Representation;
pub use pipeline::{analyze, AnalysisConfig, AnalysisReport, AnalysisRequest};
pub use select::Selection;
pub use signature::MetricSignature;
pub use validate_basis::{validate_basis, BasisIssue};
