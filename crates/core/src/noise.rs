//! Noise analysis (paper §IV): maximum pairwise RNMSE and the variability
//! filter.

use catalyze_linalg::vector;
use serde::{Deserialize, Serialize};

/// Maximum root-normalized-mean-square-error over all pairs of measurement
/// vectors — the paper's Eq. 4:
///
/// ```text
/// max_{i != j}  ‖m_i − m_j‖₂ / sqrt(N · m̄_i · m̄_j)
/// ```
///
/// When either mean in a pair is zero the pair's variability is defined as
/// 1 (a 100 % error). Returns `None` when *every* vector is all-zero — the
/// event is irrelevant and must be discarded (paper footnote 1) — and
/// `Some(0.0)` for fewer than two vectors.
///
/// ```
/// use catalyze::noise::max_rnmse;
///
/// let clean = [5.0, 10.0];
/// assert_eq!(max_rnmse(&[&clean, &clean]), Some(0.0));
///
/// let jittery = [5.5, 9.5];
/// let v = max_rnmse(&[&clean, &jittery]).unwrap();
/// assert!(v > 0.0 && v < 1.0);
///
/// assert_eq!(max_rnmse(&[&[0.0, 0.0], &[0.0, 0.0]]), None); // irrelevant
/// ```
pub fn max_rnmse(vectors: &[&[f64]]) -> Option<f64> {
    if vectors.iter().all(|v| vector::is_zero(v)) {
        return None;
    }
    if vectors.len() < 2 {
        return Some(0.0);
    }
    let n = vectors[0].len() as f64;
    let means: Vec<f64> = vectors.iter().map(|v| vector::mean(v)).collect();
    let mut worst = 0.0_f64;
    for i in 0..vectors.len() {
        for j in i + 1..vectors.len() {
            let denom_sq = n * means[i] * means[j];
            let v = if denom_sq <= 0.0 {
                1.0
            } else {
                vector::distance(vectors[i], vectors[j]) / denom_sq.sqrt()
            };
            worst = worst.max(v);
        }
    }
    Some(worst)
}

/// Variability verdict for one event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventVariability {
    /// Event name.
    pub name: String,
    /// Index into the measurement set's event axis.
    pub index: usize,
    /// Maximum pairwise RNMSE; `None` when the event measured zero in every
    /// run (irrelevant).
    pub variability: Option<f64>,
}

impl EventVariability {
    /// True when the event survives a threshold `tau`.
    pub fn passes(&self, tau: f64) -> bool {
        matches!(self.variability, Some(v) if v <= tau)
    }
}

/// Outcome of the variability filter over a whole measurement set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseReport {
    /// Per-event verdicts, in event order.
    pub events: Vec<EventVariability>,
    /// The threshold used.
    pub tau: f64,
}

impl NoiseReport {
    /// Indices of events that pass the filter.
    pub fn kept(&self) -> Vec<usize> {
        self.events.iter().filter(|e| e.passes(self.tau)).map(|e| e.index).collect()
    }

    /// Indices of events discarded for noise (variability above `tau`).
    pub fn discarded_noisy(&self) -> Vec<usize> {
        self.events
            .iter()
            .filter(|e| matches!(e.variability, Some(v) if v > self.tau))
            .map(|e| e.index)
            .collect()
    }

    /// Indices of events discarded as irrelevant (all-zero).
    pub fn discarded_zero(&self) -> Vec<usize> {
        self.events.iter().filter(|e| e.variability.is_none()).map(|e| e.index).collect()
    }

    /// Variabilities sorted ascending — the series plotted in Figure 2.
    /// All-zero (irrelevant) events are excluded, matching the paper.
    pub fn sorted_variabilities(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.events.iter().filter_map(|e| e.variability).collect();
        v.sort_by(f64::total_cmp);
        v
    }
}

/// Computes per-event variabilities for named measurement vectors.
///
/// `vectors_by_event[e]` holds event `e`'s measurement vectors across runs.
pub fn analyze_noise(names: &[String], vectors_by_event: &[Vec<&[f64]>], tau: f64) -> NoiseReport {
    let events = names
        .iter()
        .zip(vectors_by_event)
        .enumerate()
        .map(|(index, (name, vecs))| EventVariability {
            name: name.clone(),
            index,
            variability: max_rnmse(vecs),
        })
        .collect();
    NoiseReport { events, tau }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_vectors_zero_variability() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(max_rnmse(&[&a, &a, &a]), Some(0.0));
    }

    #[test]
    fn all_zero_is_irrelevant() {
        let z = [0.0, 0.0];
        assert_eq!(max_rnmse(&[&z, &z]), None);
    }

    #[test]
    fn one_zero_mean_gives_unit_variability() {
        let a = [1.0, 1.0];
        let z = [0.0, 0.0];
        assert_eq!(max_rnmse(&[&a, &z]), Some(1.0));
    }

    #[test]
    fn single_vector_is_noise_free() {
        let a = [5.0, 6.0];
        assert_eq!(max_rnmse(&[&a]), Some(0.0));
    }

    #[test]
    fn formula_hand_check() {
        // m1 = (1,1), m2 = (1.1, 0.9): diff norm = sqrt(0.02),
        // denom = sqrt(2 * 1 * 1) = sqrt(2).
        let m1 = [1.0, 1.0];
        let m2 = [1.1, 0.9];
        let got = max_rnmse(&[&m1, &m2]).unwrap();
        let want = (0.02_f64).sqrt() / (2.0_f64).sqrt();
        assert!((got - want).abs() < 1e-15);
    }

    #[test]
    fn max_over_pairs() {
        let a = [1.0, 1.0];
        let b = [1.0, 1.0];
        let c = [2.0, 2.0];
        let only_ab = max_rnmse(&[&a, &b]).unwrap();
        let with_c = max_rnmse(&[&a, &b, &c]).unwrap();
        assert!(with_c > only_ab);
    }

    #[test]
    fn report_partitions_events() {
        let run1 = [vec![1.0, 2.0], vec![0.0, 0.0], vec![1.0, 1.0]];
        let run2 = [vec![1.0, 2.0], vec![0.0, 0.0], vec![2.0, 0.5]];
        let names = vec!["clean".to_string(), "zero".to_string(), "noisy".to_string()];
        let vectors: Vec<Vec<&[f64]>> =
            (0..3).map(|e| vec![run1[e].as_slice(), run2[e].as_slice()]).collect();
        let report = analyze_noise(&names, &vectors, 1e-10);
        assert_eq!(report.kept(), vec![0]);
        assert_eq!(report.discarded_zero(), vec![1]);
        assert_eq!(report.discarded_noisy(), vec![2]);
        let sorted = report.sorted_variabilities();
        assert_eq!(sorted.len(), 2, "irrelevant events excluded from the figure");
        assert!(sorted[0] <= sorted[1]);
    }

    #[test]
    fn passes_respects_threshold_boundary() {
        let e = EventVariability { name: "x".into(), index: 0, variability: Some(1e-10) };
        assert!(e.passes(1e-10), "exactly tau passes (<=)");
        assert!(!e.passes(1e-11));
        let z = EventVariability { name: "z".into(), index: 1, variability: None };
        assert!(!z.passes(1.0), "irrelevant events never pass");
    }
}
