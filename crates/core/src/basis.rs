//! Expectation bases (paper §III).
//!
//! An *expectation* is the measurement vector an ideal event would produce
//! over a benchmark's points. Stacking the expectations of one hardware
//! domain as columns yields the basis `E`, the coordinate system in which
//! raw events are represented and metric signatures are expressed.
//!
//! The kernel structures here mirror `catalyze-cat` (16 CPU-FLOPs kernels
//! with 24/48/96- or 12/24/48-instruction loops; 11 branch kernels; 15 GPU
//! kernels at 256/512/1024 instructions; the pointer-chase sweep described
//! by its per-point regions). Integration tests in the workspace pin the
//! alignment between the two crates.

use catalyze_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// The cache region of one pointer-chase point (mirrors
/// `catalyze_cat::dcache::Region` structurally; kept separate so the
/// analysis crate does not depend on the benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CacheRegion {
    /// Working set fits in L1.
    L1,
    /// Fits in L2, not L1.
    L2,
    /// Fits in L3, not L2.
    L3,
    /// Exceeds L3.
    Memory,
}

/// An expectation basis: labeled columns over a benchmark's points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Basis {
    /// One label per expectation (basis column), e.g. `D256_FMA` or `CR`.
    pub labels: Vec<String>,
    /// `points x expectations` matrix `E`.
    pub matrix: Matrix,
}

impl Basis {
    /// Number of expectations (columns).
    pub fn dim(&self) -> usize {
        self.labels.len()
    }

    /// Number of measurement points (rows).
    pub fn points(&self) -> usize {
        self.matrix.rows()
    }

    /// Index of an expectation by label.
    pub fn index_of(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }
}

/// Loop sizes of non-FMA CPU-FLOPs kernels (instructions per iteration).
pub const CPU_FLOPS_SIZES: [f64; 3] = [24.0, 48.0, 96.0];
/// Loop sizes of FMA CPU-FLOPs kernels.
pub const CPU_FLOPS_FMA_SIZES: [f64; 3] = [12.0, 24.0, 48.0];

/// CPU-FLOPs expectation labels in basis order (the paper's `E`):
/// `SSCAL..S512, DSCAL..D512, SSCAL_FMA..S512_FMA, DSCAL_FMA..D512_FMA`.
pub fn cpu_flops_labels() -> Vec<String> {
    let mut labels = Vec::with_capacity(16);
    for fma in [false, true] {
        for p in ["S", "D"] {
            for w in ["SCAL", "128", "256", "512"] {
                let mut s = format!("{p}{w}");
                if fma {
                    s.push_str("_FMA");
                }
                labels.push(s);
            }
        }
    }
    labels
}

/// The CPU-FLOPs expectation basis: 48 points (16 kernels x 3 loops) by 16
/// ideal events. Expectation `k` is supported on kernel `k`'s three points
/// with the per-iteration instruction counts.
pub fn cpu_flops_basis() -> Basis {
    let labels = cpu_flops_labels();
    let mut e = Matrix::zeros(48, 16);
    for (k, label) in labels.iter().enumerate() {
        let sizes = if label.ends_with("_FMA") { CPU_FLOPS_FMA_SIZES } else { CPU_FLOPS_SIZES };
        for (l, &v) in sizes.iter().enumerate() {
            e[(3 * k + l, k)] = v;
        }
    }
    Basis { labels, matrix: e }
}

/// Branching expectation labels: Conditional Executed, Conditional Retired,
/// Taken, Unconditional (Direct), Mispredicted.
pub(crate) fn branch_labels() -> Vec<String> {
    ["CE", "CR", "T", "D", "M"].iter().map(|s| s.to_string()).collect()
}

/// The branching expectation basis — the paper's Eq. 3 (11 kernels x 5
/// expectations).
pub fn branch_basis() -> Basis {
    let rows: [[f64; 5]; 11] = [
        [2.0, 2.0, 1.5, 0.0, 0.0],
        [2.0, 2.0, 1.0, 0.0, 0.0],
        [2.0, 2.0, 2.0, 0.0, 0.0],
        [2.0, 2.0, 1.5, 0.0, 0.5],
        [2.5, 2.5, 1.5, 0.0, 0.5],
        [2.5, 2.5, 2.0, 0.0, 0.5],
        [2.5, 2.0, 1.5, 0.0, 0.5],
        [3.0, 2.5, 1.5, 0.0, 0.5],
        [3.0, 2.5, 2.0, 0.0, 0.5],
        [2.0, 2.0, 1.0, 1.0, 0.0],
        [1.0, 1.0, 1.0, 0.0, 0.0],
    ];
    let flat: Vec<f64> = rows.iter().flatten().copied().collect();
    Basis {
        labels: branch_labels(),
        // lint: allow(panic, reachable_panic): static 11x5 expectation table
        matrix: Matrix::from_rows(11, 5, &flat).expect("static shape"),
    }
}

/// Per-wavefront instruction counts of the GPU kernels' three runs.
pub const GPU_FLOPS_SIZES: [f64; 3] = [256.0, 512.0, 1024.0];

/// GPU-FLOPs expectation labels: `TP` with `T` in `{A,S,M,SQ,F}` and `P`
/// in `{H,S,D}` (Eq. 2 column order).
pub fn gpu_flops_labels() -> Vec<String> {
    let mut labels = Vec::with_capacity(15);
    for t in ["A", "S", "M", "SQ", "F"] {
        for p in ["H", "S", "D"] {
            labels.push(format!("{t}{p}"));
        }
    }
    labels
}

/// The GPU-FLOPs expectation basis: 45 points (15 kernels x 3 sizes) by 15
/// ideal events.
pub fn gpu_flops_basis() -> Basis {
    let labels = gpu_flops_labels();
    let mut e = Matrix::zeros(45, 15);
    for k in 0..15 {
        for (l, &v) in GPU_FLOPS_SIZES.iter().enumerate() {
            e[(3 * k + l, k)] = v;
        }
    }
    Basis { labels, matrix: e }
}

/// Data-cache expectation labels: L1 Demand Misses, L1 Demand Hits, L2
/// Demand Hits, L3 Demand Hits.
pub(crate) fn dcache_labels() -> Vec<String> {
    ["L1DM", "L1DH", "L2DH", "L3DH"].iter().map(|s| s.to_string()).collect()
}

/// The data-cache expectation basis, built from the benchmark's per-point
/// regions: per access, an L1-resident point produces one L1 hit; larger
/// points produce one L1 miss plus one hit at their home level.
pub fn dcache_basis(regions: &[CacheRegion]) -> Basis {
    let mut e = Matrix::zeros(regions.len(), 4);
    for (p, r) in regions.iter().enumerate() {
        match r {
            CacheRegion::L1 => e[(p, 1)] = 1.0,
            CacheRegion::L2 => {
                e[(p, 0)] = 1.0;
                e[(p, 2)] = 1.0;
            }
            CacheRegion::L3 => {
                e[(p, 0)] = 1.0;
                e[(p, 3)] = 1.0;
            }
            CacheRegion::Memory => e[(p, 0)] = 1.0,
        }
    }
    Basis { labels: dcache_labels(), matrix: e }
}

/// Store-path expectation labels (extension domain): per-store L1 write
/// misses (RFOs), L1 write hits, L2 write hits, L3 write hits.
pub(crate) fn dstore_labels() -> Vec<String> {
    ["S1M", "S1H", "S2H", "S3H"].iter().map(|s| s.to_string()).collect()
}

/// The store-path expectation basis: structurally the load-cache basis
/// applied to write traffic.
pub fn dstore_basis(regions: &[CacheRegion]) -> Basis {
    let mut b = dcache_basis(regions);
    b.labels = dstore_labels();
    b
}

/// Data-TLB expectation labels (extension domain): per-access TLB misses
/// and TLB hits.
pub(crate) fn dtlb_labels() -> Vec<String> {
    ["TLBM", "TLBH"].iter().map(|s| s.to_string()).collect()
}

/// The data-TLB expectation basis, built from the benchmark's per-point
/// hit-region flags: a TLB-resident point produces one hit per access, a
/// far-oversized point one miss per access.
pub fn dtlb_basis(hit_regions: &[bool]) -> Basis {
    let mut e = Matrix::zeros(hit_regions.len(), 2);
    for (p, &hit) in hit_regions.iter().enumerate() {
        if hit {
            e[(p, 1)] = 1.0;
        } else {
            e[(p, 0)] = 1.0;
        }
    }
    Basis { labels: dtlb_labels(), matrix: e }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_flops_basis_shape_and_support() {
        let b = cpu_flops_basis();
        assert_eq!(b.points(), 48);
        assert_eq!(b.dim(), 16);
        assert_eq!(b.labels[0], "SSCAL");
        assert_eq!(b.labels[4], "DSCAL");
        assert_eq!(b.labels[8], "SSCAL_FMA");
        assert_eq!(b.labels[15], "D512_FMA");
        // DSCAL expectation: kernel 4, points 12..15, values 24/48/96.
        assert_eq!(b.matrix[(12, 4)], 24.0);
        assert_eq!(b.matrix[(13, 4)], 48.0);
        assert_eq!(b.matrix[(14, 4)], 96.0);
        assert_eq!(b.matrix[(12, 5)], 0.0);
        // D256_FMA: kernel 14 (label index), FMA sizes.
        let idx = b.index_of("D256_FMA").unwrap();
        assert_eq!(b.matrix[(3 * idx, idx)], 12.0);
    }

    #[test]
    fn cpu_flops_columns_are_orthogonal() {
        let b = cpu_flops_basis();
        let g = b.matrix.gram();
        for i in 0..16 {
            for j in 0..16 {
                if i != j {
                    assert_eq!(g[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn branch_basis_matches_eq3() {
        let b = branch_basis();
        assert_eq!(b.points(), 11);
        assert_eq!(b.dim(), 5);
        assert_eq!(b.matrix[(0, 2)], 1.5);
        assert_eq!(b.matrix[(6, 0)], 2.5);
        assert_eq!(b.matrix[(6, 1)], 2.0);
        assert_eq!(b.matrix[(9, 3)], 1.0);
        assert_eq!(b.matrix[(10, 0)], 1.0);
    }

    #[test]
    fn gpu_basis_shape() {
        let b = gpu_flops_basis();
        assert_eq!(b.points(), 45);
        assert_eq!(b.dim(), 15);
        assert_eq!(b.labels[0], "AH");
        assert_eq!(b.labels[3], "SH");
        assert_eq!(b.labels[9], "SQH");
        assert_eq!(b.labels[14], "FD");
        assert_eq!(b.matrix[(0, 0)], 256.0);
        assert_eq!(b.matrix[(44, 14)], 1024.0);
    }

    #[test]
    fn dcache_basis_structure() {
        let regions = [CacheRegion::L1, CacheRegion::L2, CacheRegion::L3, CacheRegion::Memory];
        let b = dcache_basis(&regions);
        assert_eq!(b.points(), 4);
        assert_eq!(b.dim(), 4);
        // L1 point: hit only.
        assert_eq!(b.matrix.row(0), vec![0.0, 1.0, 0.0, 0.0]);
        // L2 point: L1 miss + L2 hit.
        assert_eq!(b.matrix.row(1), vec![1.0, 0.0, 1.0, 0.0]);
        // L3 point: L1 miss + L3 hit.
        assert_eq!(b.matrix.row(2), vec![1.0, 0.0, 0.0, 1.0]);
        // Memory: L1 miss only.
        assert_eq!(b.matrix.row(3), vec![1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn index_of_lookup() {
        let b = branch_basis();
        assert_eq!(b.index_of("T"), Some(2));
        assert_eq!(b.index_of("nope"), None);
    }
}
