//! Pipeline-level error type: mis-shaped input is a recoverable error, not
//! a panic.

use catalyze_linalg::LinalgError;
use std::fmt;

/// Everything that can go wrong running the analysis pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The request carried no measurement runs.
    EmptyRuns,
    /// The request never set an expectation basis.
    MissingBasis,
    /// Two request axes that must agree do not (event names vs run columns,
    /// measurement points vs basis rows, signature vs basis dimension, …).
    Shape {
        /// Which axes disagree.
        context: &'static str,
        /// The length the reference axis has.
        expected: usize,
        /// The length the offending axis has.
        got: usize,
    },
    /// A linear-algebra kernel failed (non-finite measurements, a
    /// rank-deficient basis, …).
    Linalg(LinalgError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::EmptyRuns => write!(f, "no measurement runs"),
            AnalysisError::MissingBasis => write!(f, "no expectation basis was provided"),
            AnalysisError::Shape { context, expected, got } => {
                write!(f, "{context}: expected {expected}, got {got}")
            }
            AnalysisError::Linalg(e) => write!(f, "linear algebra: {e}"),
        }
    }
}

impl std::error::Error for AnalysisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnalysisError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for AnalysisError {
    fn from(e: LinalgError) -> Self {
        AnalysisError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(AnalysisError::EmptyRuns.to_string(), "no measurement runs");
        assert!(AnalysisError::MissingBasis.to_string().contains("basis"));
        let e = AnalysisError::Shape { context: "events per run", expected: 4, got: 3 };
        assert_eq!(e.to_string(), "events per run: expected 4, got 3");
        let e = AnalysisError::from(LinalgError::NonFinite { context: "lstsq" });
        assert!(e.to_string().contains("non-finite"));
    }

    #[test]
    fn linalg_source_is_preserved() {
        use std::error::Error as _;
        let e = AnalysisError::from(LinalgError::Empty { context: "qr" });
        assert!(e.source().is_some());
        assert!(AnalysisError::EmptyRuns.source().is_none());
    }
}
