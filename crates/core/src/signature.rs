//! Metric signatures (paper Tables I–IV).
//!
//! A signature expresses a desired high-level metric in expectation-basis
//! coordinates: the right-hand side `s` of the metric-definition system
//! `X̂ · y = s`.

use serde::{Deserialize, Serialize};

/// A performance-metric signature over some expectation basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricSignature {
    /// Metric name as printed in the paper's tables.
    pub name: String,
    /// Coefficients in basis order.
    pub coefficients: Vec<f64>,
}

impl MetricSignature {
    /// Builds a signature.
    pub fn new(name: &str, coefficients: Vec<f64>) -> Self {
        Self { name: name.to_string(), coefficients }
    }
}

/// Table I: CPU floating-point metric signatures over the 16-dimensional
/// basis `(SSCAL, S128, S256, S512, DSCAL, ..., D512, SSCAL_FMA, ...,
/// S512_FMA, DSCAL_FMA, ..., D512_FMA)`.
///
/// FMA-kernel entries are scaled by two because the `FP_ARITH`-style raw
/// events these signatures are meant to be composed from count an FMA
/// instruction twice.
pub fn cpu_flops_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new(
            "SP Instrs.",
            vec![1., 1., 1., 1., 0., 0., 0., 0., 2., 2., 2., 2., 0., 0., 0., 0.],
        ),
        MetricSignature::new(
            "SP Ops.",
            vec![1., 4., 8., 16., 0., 0., 0., 0., 2., 8., 16., 32., 0., 0., 0., 0.],
        ),
        MetricSignature::new(
            "SP FMA Instrs.",
            vec![0., 0., 0., 0., 0., 0., 0., 0., 2., 2., 2., 2., 0., 0., 0., 0.],
        ),
        MetricSignature::new(
            "DP Instrs.",
            vec![0., 0., 0., 0., 1., 1., 1., 1., 0., 0., 0., 0., 2., 2., 2., 2.],
        ),
        MetricSignature::new(
            "DP Ops.",
            vec![0., 0., 0., 0., 1., 2., 4., 8., 0., 0., 0., 0., 2., 4., 8., 16.],
        ),
        MetricSignature::new(
            "DP FMA Instrs.",
            vec![0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 2., 2., 2., 2.],
        ),
    ]
}

/// Table II: GPU floating-point metric signatures over the 15-dimensional
/// basis `(AH, AS, AD, SH, SS, SD, MH, MS, MD, SQH, SQS, SQD, FH, FS, FD)`.
pub fn gpu_flops_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new(
            "HP Add Ops.",
            vec![1., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0.],
        ),
        MetricSignature::new(
            "HP Sub Ops.",
            vec![0., 0., 0., 1., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0.],
        ),
        MetricSignature::new(
            "HP Add and Sub Ops.",
            vec![1., 0., 0., 1., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0., 0.],
        ),
        MetricSignature::new(
            "All HP Ops.",
            vec![1., 0., 0., 1., 0., 0., 1., 0., 0., 1., 0., 0., 2., 0., 0.],
        ),
        MetricSignature::new(
            "All SP Ops.",
            vec![0., 1., 0., 0., 1., 0., 0., 1., 0., 0., 1., 0., 0., 2., 0.],
        ),
        MetricSignature::new(
            "All DP Ops.",
            vec![0., 0., 1., 0., 0., 1., 0., 0., 1., 0., 0., 1., 0., 0., 2.],
        ),
    ]
}

/// Table III: branching metric signatures over `(CE, CR, T, D, M)`.
pub fn branch_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new("Unconditional Branches.", vec![0., 0., 0., 1., 0.]),
        MetricSignature::new("Conditional Branches Taken.", vec![0., 0., 1., 0., 0.]),
        MetricSignature::new("Conditional Branches Not Taken.", vec![0., 1., -1., 0., 0.]),
        MetricSignature::new("Mispredicted Branches.", vec![0., 0., 0., 0., 1.]),
        MetricSignature::new("Correctly Predicted Branches.", vec![0., 1., 0., 0., -1.]),
        MetricSignature::new("Conditional Branches Retired.", vec![0., 1., 0., 0., 0.]),
        MetricSignature::new("Conditional Branches Executed.", vec![1., 0., 0., 0., 0.]),
    ]
}

/// Table IV: data-cache metric signatures over `(L1DM, L1DH, L2DH, L3DH)`.
pub fn dcache_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new("L1 Misses.", vec![1., 0., 0., 0.]),
        MetricSignature::new("L1 Hits.", vec![0., 1., 0., 0.]),
        MetricSignature::new("L1 Reads.", vec![1., 1., 0., 0.]),
        MetricSignature::new("L2 Hits.", vec![0., 0., 1., 0.]),
        MetricSignature::new("L2 Misses.", vec![1., 0., -1., 0.]),
        MetricSignature::new("L3 Hits.", vec![0., 0., 0., 1.]),
    ]
}

/// Extension: the precision-agnostic "All FP Ops." signature (SP Ops +
/// DP Ops) — composable on architectures whose FP counters merge
/// precisions (AMD-style), where the per-precision signatures are not.
pub fn all_fp_ops_signature() -> MetricSignature {
    let sigs = cpu_flops_signatures();
    let sp = &sigs[1];
    let dp = &sigs[4];
    debug_assert_eq!(sp.name, "SP Ops.");
    debug_assert_eq!(dp.name, "DP Ops.");
    MetricSignature::new(
        "All FP Ops.",
        sp.coefficients.iter().zip(&dp.coefficients).map(|(a, b)| a + b).collect(),
    )
}

/// Extension: data-TLB metric signatures over `(TLBM, TLBH)`.
pub fn dtlb_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new("TLB Misses.", vec![1., 0.]),
        MetricSignature::new("TLB Hits.", vec![0., 1.]),
        MetricSignature::new("TLB Accesses.", vec![1., 1.]),
    ]
}

/// Extension: store-path metric signatures over `(S1M, S1H, S2H, S3H)`.
pub fn dstore_signatures() -> Vec<MetricSignature> {
    vec![
        MetricSignature::new("L1 Store Misses (RFOs).", vec![1., 0., 0., 0.]),
        MetricSignature::new("L1 Store Hits.", vec![0., 1., 0., 0.]),
        MetricSignature::new("All Stores.", vec![1., 1., 0., 0.]),
        MetricSignature::new("L2 Store Hits.", vec![0., 0., 1., 0.]),
        MetricSignature::new("L2 Store Misses.", vec![1., 0., -1., 0.]),
        MetricSignature::new("L3 Store Hits.", vec![0., 0., 0., 1.]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis;

    #[test]
    fn dimensions_match_bases() {
        for s in cpu_flops_signatures() {
            assert_eq!(s.coefficients.len(), basis::cpu_flops_basis().dim(), "{}", s.name);
        }
        for s in gpu_flops_signatures() {
            assert_eq!(s.coefficients.len(), basis::gpu_flops_basis().dim(), "{}", s.name);
        }
        for s in branch_signatures() {
            assert_eq!(s.coefficients.len(), 5, "{}", s.name);
        }
        for s in dcache_signatures() {
            assert_eq!(s.coefficients.len(), 4, "{}", s.name);
        }
    }

    #[test]
    fn dp_flops_signature_matches_paper_formula() {
        // 1*DSCAL + 2*D128 + 4*D256 + 8*D512 + 2*DSCAL_FMA + 4*D128_FMA
        // + 8*D256_FMA + 16*D512_FMA.
        let b = basis::cpu_flops_basis();
        let s = &cpu_flops_signatures()[4];
        assert_eq!(s.name, "DP Ops.");
        assert_eq!(s.coefficients[b.index_of("DSCAL").unwrap()], 1.0);
        assert_eq!(s.coefficients[b.index_of("D256").unwrap()], 4.0);
        assert_eq!(s.coefficients[b.index_of("D256_FMA").unwrap()], 8.0);
        assert_eq!(s.coefficients[b.index_of("D512_FMA").unwrap()], 16.0);
        assert_eq!(s.coefficients[b.index_of("SSCAL").unwrap()], 0.0);
    }

    #[test]
    fn table_counts() {
        assert_eq!(cpu_flops_signatures().len(), 6);
        assert_eq!(gpu_flops_signatures().len(), 6);
        assert_eq!(branch_signatures().len(), 7);
        assert_eq!(dcache_signatures().len(), 6);
    }

    #[test]
    fn branch_derived_identities() {
        // Not Taken = Retired - Taken; Correctly Predicted = Retired - Misp.
        let sigs = branch_signatures();
        let retired = &sigs[5].coefficients;
        let taken = &sigs[1].coefficients;
        let not_taken = &sigs[2].coefficients;
        for i in 0..5 {
            assert_eq!(not_taken[i], retired[i] - taken[i]);
        }
        let misp = &sigs[3].coefficients;
        let correct = &sigs[4].coefficients;
        for i in 0..5 {
            assert_eq!(correct[i], retired[i] - misp[i]);
        }
    }

    #[test]
    fn gpu_all_ops_scales_fma_by_two() {
        let b = basis::gpu_flops_basis();
        for (sig, f) in gpu_flops_signatures()[3..6].iter().zip(["FH", "FS", "FD"]) {
            assert_eq!(sig.coefficients[b.index_of(f).unwrap()], 2.0, "{}", sig.name);
        }
    }
}
