//! Sanity checks for user-supplied expectation bases.
//!
//! The analysis is only as good as the basis (§III): a rank-deficient `E`
//! makes representations ambiguous, wildly different column scales make the
//! least-squares normalization ill-conditioned, and points that excite no
//! expectation contribute nothing. This module catches those mistakes
//! before a custom domain (see `examples/custom_domain.rs`) produces
//! silently meaningless metric definitions.

use crate::basis::Basis;
use catalyze_linalg::{singular_values, vector};
use serde::{Deserialize, Serialize};

/// One problem found in a basis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BasisIssue {
    /// The expectation columns are not linearly independent: representations
    /// in this basis are non-unique.
    RankDeficient {
        /// Numerical rank found.
        rank: usize,
        /// Expected rank (the number of expectations).
        expected: usize,
    },
    /// One expectation never fires on any point — it cannot be
    /// distinguished from "does not exist".
    EmptyExpectation {
        /// Label of the empty column.
        label: String,
    },
    /// A measurement point excites no expectation: it adds rows of zeros
    /// that only dilute the least-squares fit.
    DeadPoint {
        /// Point index.
        point: usize,
    },
    /// Column norms span more than `1e3`x: the normalization least squares
    /// becomes scale-dominated (the failure mode §II ascribes to raw
    /// cycles-vs-FLOPs magnitudes).
    ScaleSpread {
        /// Ratio of the largest to the smallest column norm.
        ratio: f64,
    },
    /// The basis is square-or-wide in the wrong direction: fewer points
    /// than expectations can never determine the representations.
    TooFewPoints {
        /// Number of points (rows).
        points: usize,
        /// Number of expectations (columns).
        expectations: usize,
    },
}

impl std::fmt::Display for BasisIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BasisIssue::RankDeficient { rank, expected } => {
                write!(
                    f,
                    "basis is rank deficient ({rank} < {expected}): representations are ambiguous"
                )
            }
            BasisIssue::EmptyExpectation { label } => {
                write!(f, "expectation '{label}' is zero at every point")
            }
            BasisIssue::DeadPoint { point } => {
                write!(f, "point {point} excites no expectation")
            }
            BasisIssue::ScaleSpread { ratio } => {
                write!(f, "expectation norms span a {ratio:.0}x range; consider normalizing")
            }
            BasisIssue::TooFewPoints { points, expectations } => {
                write!(f, "{points} points cannot determine {expectations} expectations")
            }
        }
    }
}

/// Checks a basis and returns every issue found (empty = sound).
pub fn validate_basis(basis: &Basis) -> Vec<BasisIssue> {
    let mut issues = Vec::new();
    let (points, expectations) = (basis.points(), basis.dim());
    if points < expectations {
        issues.push(BasisIssue::TooFewPoints { points, expectations });
    }

    let mut norms = Vec::with_capacity(expectations);
    for (j, label) in basis.labels.iter().enumerate() {
        let norm = vector::norm2(basis.matrix.col(j));
        // lint: allow(float_cmp): exact-zero guard before dividing by the norm
        if norm == 0.0 {
            issues.push(BasisIssue::EmptyExpectation { label: clone_label(label) });
        } else {
            norms.push(norm);
        }
    }
    if let (Some(&max), Some(&min)) =
        (norms.iter().max_by(|a, b| a.total_cmp(b)), norms.iter().min_by(|a, b| a.total_cmp(b)))
    {
        let ratio = max / min;
        if ratio > 1e3 {
            issues.push(BasisIssue::ScaleSpread { ratio });
        }
    }

    for p in 0..points {
        // lint: allow(float_cmp): a zero row is exactly zero, not approximately
        if basis.matrix.row(p).iter().all(|&v| v == 0.0) {
            issues.push(BasisIssue::DeadPoint { point: p });
        }
    }

    if points >= expectations && expectations > 0 {
        if let Ok(svd) = singular_values(&basis.matrix) {
            let rank = svd.rank(1e-10);
            if rank < expectations {
                issues.push(BasisIssue::RankDeficient { rank, expected: expectations });
            }
        }
    }
    issues
}

fn clone_label(l: &str) -> String {
    l.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::{self, Basis};
    use catalyze_linalg::Matrix;

    #[test]
    fn builtin_bases_are_sound() {
        assert!(validate_basis(&basis::cpu_flops_basis()).is_empty());
        assert!(validate_basis(&basis::branch_basis()).is_empty());
        assert!(validate_basis(&basis::gpu_flops_basis()).is_empty());
        let regions = [
            basis::CacheRegion::L1,
            basis::CacheRegion::L2,
            basis::CacheRegion::L3,
            basis::CacheRegion::Memory,
        ];
        assert!(validate_basis(&basis::dcache_basis(&regions)).is_empty());
        assert!(validate_basis(&basis::dtlb_basis(&[true, false])).is_empty());
    }

    fn b(rows: usize, cols: usize, data: &[f64], labels: &[&str]) -> Basis {
        Basis {
            labels: labels.iter().map(|s| s.to_string()).collect(),
            matrix: Matrix::from_rows(rows, cols, data).unwrap(),
        }
    }

    #[test]
    fn detects_rank_deficiency() {
        // Second column is twice the first.
        let basis = b(3, 2, &[1., 2., 2., 4., 3., 6.], &["A", "B"]);
        let issues = validate_basis(&basis);
        assert!(
            issues.iter().any(|i| matches!(i, BasisIssue::RankDeficient { rank: 1, .. })),
            "{issues:?}"
        );
    }

    #[test]
    fn detects_empty_expectation_and_dead_point() {
        let basis = b(3, 2, &[1., 0., 0., 0., 2., 0.], &["A", "EMPTY"]);
        let issues = validate_basis(&basis);
        assert!(issues
            .iter()
            .any(|i| matches!(i, BasisIssue::EmptyExpectation { label } if label == "EMPTY")));
        assert!(issues.iter().any(|i| matches!(i, BasisIssue::DeadPoint { point: 1 })));
    }

    #[test]
    fn detects_scale_spread() {
        let basis = b(2, 2, &[1e6, 1., 2e6, 1.], &["CYCLES", "FLOPS"]);
        let issues = validate_basis(&basis);
        assert!(issues
            .iter()
            .any(|i| matches!(i, BasisIssue::ScaleSpread { ratio } if *ratio > 1e3)));
    }

    #[test]
    fn detects_too_few_points() {
        let basis = b(1, 2, &[1., 2.], &["A", "B"]);
        let issues = validate_basis(&basis);
        assert!(issues.iter().any(|i| matches!(i, BasisIssue::TooFewPoints { .. })));
    }

    #[test]
    fn issues_display() {
        for issue in [
            BasisIssue::RankDeficient { rank: 1, expected: 2 },
            BasisIssue::EmptyExpectation { label: "X".into() },
            BasisIssue::DeadPoint { point: 3 },
            BasisIssue::ScaleSpread { ratio: 5e4 },
            BasisIssue::TooFewPoints { points: 1, expectations: 2 },
        ] {
            assert!(!issue.to_string().is_empty());
        }
    }
}
