//! Property tests: event-name grammar round-trips, preset evaluation
//! linearity, and the PAPI-format round-trip.

use catalyze_events::{
    from_papi_format, to_papi_format, EventName, Preset, PresetTable, PresetTerm, Qualifier,
};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.]{0,14}"
}

fn qualifier() -> impl Strategy<Value = Qualifier> {
    (ident(), proptest::option::of(ident())).prop_map(|(k, v)| match v {
        Some(v) => Qualifier::with_value(k, v),
        None => Qualifier::flag(k),
    })
}

fn event_name() -> impl Strategy<Value = EventName> {
    (proptest::option::of(ident()), ident(), proptest::collection::vec(qualifier(), 0..3)).prop_map(
        |(component, base, qualifiers)| EventName {
            component: component.unwrap_or_default(),
            base,
            qualifiers,
        },
    )
}

proptest! {
    #[test]
    fn name_display_parse_roundtrip(name in event_name()) {
        let s = name.to_string();
        let parsed: EventName = s.parse().expect("printed names parse");
        prop_assert_eq!(parsed, name);
    }

    #[test]
    fn parse_never_panics(s in ".{0,40}") {
        let _ = s.parse::<EventName>();
    }

    #[test]
    fn preset_evaluation_is_linear(
        coeffs in proptest::collection::vec(-10.0..10.0f64, 1..5),
        counts in proptest::collection::vec(0.0..1e6f64, 5),
        scale in 0.1..10.0f64,
    ) {
        let terms: Vec<PresetTerm> = coeffs
            .iter()
            .enumerate()
            .map(|(i, &c)| PresetTerm { coefficient: c, event: format!("EV{i}").parse().unwrap() })
            .collect();
        let preset = Preset { metric: "m".into(), terms, error: 0.0 };
        let value = |s: f64| {
            preset
                .evaluate(|e| {
                    let idx: usize = e.base[2..].parse().unwrap();
                    Some(counts[idx] * s)
                })
                .value
        };
        let v1 = value(1.0);
        let v2 = value(scale);
        prop_assert!((v2 - scale * v1).abs() <= 1e-9 * v1.abs().max(1.0));
    }

    #[test]
    fn papi_roundtrip(
        metrics in proptest::collection::vec(("[A-Z][A-Za-z ]{0,12}", proptest::collection::vec((-100.0..100.0f64, 0usize..4), 1..4)), 1..4)
    ) {
        let table = PresetTable {
            title: "t".into(),
            presets: metrics
                .iter()
                .enumerate()
                .map(|(i, (name, terms))| Preset {
                    metric: format!("{name}{i}"),
                    terms: terms
                        .iter()
                        .map(|(c, e)| PresetTerm {
                            coefficient: *c,
                            event: format!("EVENT_{e}:UMASK_{e}").parse().unwrap(),
                        })
                        .collect(),
                    error: 1e-16,
                })
                .collect(),
        };
        let text = to_papi_format("arch", &table);
        let parsed = from_papi_format(&text).expect("emitted format parses");
        prop_assert_eq!(parsed.presets.len(), table.presets.len());
        for (p, q) in parsed.presets.iter().zip(&table.presets) {
            prop_assert_eq!(&p.metric, &q.metric);
            prop_assert_eq!(p.terms.len(), q.terms.len());
            for (a, b) in p.terms.iter().zip(&q.terms) {
                prop_assert_eq!(&a.event, &b.event);
                prop_assert!((a.coefficient - b.coefficient).abs() < 1e-12 * b.coefficient.abs().max(1.0));
            }
        }
    }
}
