//! PAPI-style event names.
//!
//! Raw hardware events are addressed by strings of the form
//!
//! ```text
//! [component:::]BASE_NAME[:QUALIFIER[=VALUE]]*
//! ```
//!
//! e.g. `FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE` (a CPU event with a
//! umask-style qualifier) or `rocm:::SQ_INSTS_VALU_ADD_F16:device=0` (a GPU
//! event routed through a component, with a device qualifier).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One `key` or `key=value` qualifier.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Qualifier {
    /// Qualifier name (umask name, `device`, `cpu`, ...).
    pub key: String,
    /// Optional value after `=`.
    pub value: Option<String>,
}

impl Qualifier {
    /// A bare flag qualifier.
    pub fn flag(key: impl Into<String>) -> Self {
        Self { key: key.into(), value: None }
    }

    /// A `key=value` qualifier.
    pub fn with_value(key: impl Into<String>, value: impl Into<String>) -> Self {
        Self { key: key.into(), value: Some(value.into()) }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.value {
            Some(v) => write!(f, "{}={}", self.key, v),
            None => write!(f, "{}", self.key),
        }
    }
}

/// A fully qualified event name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventName {
    /// Component prefix (`rocm` in `rocm:::...`); empty for the default CPU
    /// component.
    pub component: String,
    /// Base event name.
    pub base: String,
    /// Qualifiers in order of appearance.
    pub qualifiers: Vec<Qualifier>,
}

/// Error produced when parsing an event name string.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead_api): FromStr::Err of EventName; callers must be able to name it
pub struct ParseNameError {
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ParseNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid event name: {}", self.reason)
    }
}

impl std::error::Error for ParseNameError {}

impl EventName {
    /// A CPU event with no qualifiers.
    pub fn cpu(base: impl Into<String>) -> Self {
        Self { component: String::new(), base: base.into(), qualifiers: Vec::new() }
    }

    /// A CPU event with one flag qualifier (`BASE:QUAL`).
    pub fn cpu_q(base: impl Into<String>, qual: impl Into<String>) -> Self {
        Self {
            component: String::new(),
            base: base.into(),
            qualifiers: vec![Qualifier::flag(qual)],
        }
    }

    /// A component event (`comp:::BASE`).
    pub fn component(component: impl Into<String>, base: impl Into<String>) -> Self {
        Self { component: component.into(), base: base.into(), qualifiers: Vec::new() }
    }

    /// Adds a qualifier, builder style.
    pub fn with_qualifier(mut self, q: Qualifier) -> Self {
        self.qualifiers.push(q);
        self
    }

    /// True when any qualifier has the given key.
    pub fn has_qualifier(&self, key: &str) -> bool {
        self.qualifiers.iter().any(|q| q.key == key)
    }

    /// Value of the first qualifier with the given key, if any.
    pub fn qualifier_value(&self, key: &str) -> Option<&str> {
        self.qualifiers.iter().find(|q| q.key == key).and_then(|q| q.value.as_deref())
    }
}

impl fmt::Display for EventName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.component.is_empty() {
            write!(f, "{}:::", self.component)?;
        }
        write!(f, "{}", self.base)?;
        for q in &self.qualifiers {
            write!(f, ":{q}")?;
        }
        Ok(())
    }
}

impl FromStr for EventName {
    type Err = ParseNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(ParseNameError { reason: "empty string".into() });
        }
        let (component, rest) = match s.find(":::") {
            Some(idx) => {
                let comp = &s[..idx];
                if comp.is_empty() {
                    return Err(ParseNameError { reason: "empty component before ':::'".into() });
                }
                (comp.to_string(), &s[idx + 3..])
            }
            None => (String::new(), s),
        };
        let mut parts = rest.split(':');
        let base = parts.next().unwrap_or_default();
        if base.is_empty() {
            return Err(ParseNameError { reason: format!("missing base name in '{s}'") });
        }
        let mut qualifiers = Vec::new();
        for part in parts {
            if part.is_empty() {
                return Err(ParseNameError { reason: format!("empty qualifier in '{s}'") });
            }
            match part.split_once('=') {
                Some((k, v)) => {
                    if k.is_empty() {
                        return Err(ParseNameError {
                            reason: format!("empty qualifier key in '{s}'"),
                        });
                    }
                    qualifiers.push(Qualifier::with_value(k, v));
                }
                None => qualifiers.push(Qualifier::flag(part)),
            }
        }
        Ok(EventName { component, base: base.to_string(), qualifiers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_plain_cpu_event() {
        let e: EventName = "INST_RETIRED".parse().unwrap();
        assert_eq!(e.component, "");
        assert_eq!(e.base, "INST_RETIRED");
        assert!(e.qualifiers.is_empty());
    }

    #[test]
    fn parse_umask_qualifier() {
        let e: EventName = "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE".parse().unwrap();
        assert_eq!(e.base, "FP_ARITH_INST_RETIRED");
        assert_eq!(e.qualifiers, vec![Qualifier::flag("256B_PACKED_DOUBLE")]);
        assert_eq!(e.to_string(), "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE");
    }

    #[test]
    fn parse_rocm_device_event() {
        let e: EventName = "rocm:::SQ_INSTS_VALU_ADD_F16:device=0".parse().unwrap();
        assert_eq!(e.component, "rocm");
        assert_eq!(e.base, "SQ_INSTS_VALU_ADD_F16");
        assert_eq!(e.qualifier_value("device"), Some("0"));
        assert_eq!(e.to_string(), "rocm:::SQ_INSTS_VALU_ADD_F16:device=0");
    }

    #[test]
    fn parse_multiple_qualifiers() {
        let e: EventName = "L2_RQSTS:DEMAND_DATA_RD_HIT:cpu=3".parse().unwrap();
        assert_eq!(e.qualifiers.len(), 2);
        assert!(e.has_qualifier("DEMAND_DATA_RD_HIT"));
        assert_eq!(e.qualifier_value("cpu"), Some("3"));
        assert_eq!(e.qualifier_value("DEMAND_DATA_RD_HIT"), None);
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "CYCLES",
            "BR_INST_RETIRED:COND_TAKEN",
            "rocm:::GRBM_GUI_ACTIVE:device=7",
            "A:b=c:d:e=f",
        ] {
            let e: EventName = s.parse().unwrap();
            assert_eq!(e.to_string(), s);
            let back: EventName = e.to_string().parse().unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<EventName>().is_err());
        assert!(":::X".parse::<EventName>().is_err());
        assert!("A::b".parse::<EventName>().is_err(), "empty qualifier between colons");
        assert!("A:=v".parse::<EventName>().is_err());
        assert!(":Q".parse::<EventName>().is_err());
    }

    #[test]
    fn builders() {
        let e = EventName::cpu_q("BR_INST_RETIRED", "COND")
            .with_qualifier(Qualifier::with_value("cpu", "0"));
        assert_eq!(e.to_string(), "BR_INST_RETIRED:COND:cpu=0");
        let g = EventName::component("rocm", "SQ_WAVES");
        assert_eq!(g.to_string(), "rocm:::SQ_WAVES");
    }

    #[test]
    fn ordering_is_stable() {
        let mut v: Vec<EventName> =
            ["B", "A:Z", "A:A", "rocm:::A"].iter().map(|s| s.parse().unwrap()).collect();
        v.sort();
        let strings: Vec<String> = v.iter().map(|e| e.to_string()).collect();
        assert_eq!(strings, vec!["A:A", "A:Z", "B", "rocm:::A"]);
    }
}
