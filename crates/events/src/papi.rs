//! PAPI-style preset definition files.
//!
//! The paper's motivation is automating what PAPI maintainers do by hand:
//! writing per-architecture preset definitions that map high-level metric
//! names to combinations of native events. This module serializes preset
//! tables to (and parses them from) a line-oriented format modeled on
//! PAPI's `papi_events.csv` derived-event syntax:
//!
//! ```text
//! # architecture: spr-sim
//! PRESET,CAT_DP_OPS,DERIVED_POSTFIX,N0|2|*|N1|4|*|+|,FP_ARITH_INST_RETIRED:SCALAR_DOUBLE,FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE
//! ```
//!
//! For readability (and because reverse-Polish strings are write-only), the
//! emitter uses the simpler `DERIVED_SUM` form with explicit per-term
//! coefficients:
//!
//! ```text
//! PRESET,CAT_DP_OPS,LINEAR,1*FP_ARITH_INST_RETIRED:SCALAR_DOUBLE,2*FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE
//! ```

use crate::name::EventName;
use crate::preset::{Preset, PresetTable, PresetTerm};
use std::fmt::Write as _;

/// Converts a human metric name (`DP Ops.`) into a PAPI-style preset
/// symbol (`CAT_DP_OPS`).
pub fn preset_symbol(metric: &str) -> String {
    let mut out = String::from("CAT_");
    let mut last_underscore = true;
    for c in metric.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_uppercase());
            last_underscore = false;
        } else if !last_underscore {
            out.push('_');
            last_underscore = true;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Serializes a preset table to the line format.
///
/// ```
/// use catalyze_events::{to_papi_format, from_papi_format, Preset, PresetTable, PresetTerm};
///
/// let table = PresetTable {
///     title: "demo".into(),
///     presets: vec![Preset {
///         metric: "DP Ops.".into(),
///         terms: vec![PresetTerm {
///             coefficient: 2.0,
///             event: "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE".parse().unwrap(),
///         }],
///         error: 1e-16,
///     }],
/// };
/// let text = to_papi_format("spr-sim", &table);
/// assert!(text.contains("PRESET,CAT_DP_OPS,LINEAR,2*FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE"));
/// let parsed = from_papi_format(&text).unwrap();
/// assert_eq!(parsed.presets[0].terms, table.presets[0].terms);
/// ```
pub fn to_papi_format(architecture: &str, table: &PresetTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# architecture: {architecture}");
    let _ = writeln!(out, "# {}", table.title);
    let _ = writeln!(
        out,
        "# format: PRESET,<symbol>,LINEAR,<coeff>*<event>,...  (# err=<backward error>)"
    );
    for p in &table.presets {
        let _ = write!(out, "PRESET,{},LINEAR", preset_symbol(&p.metric));
        for t in &p.terms {
            let _ = write!(out, ",{}*{}", format_coeff(t.coefficient), t.event);
        }
        let _ = writeln!(out, "  # err={:.2e} metric=\"{}\"", p.error, p.metric);
    }
    out
}

fn format_coeff(c: f64) -> String {
    // lint: allow(float_cmp): trunc-equality is the exact whole-number test
    if c == c.trunc() && c.abs() < 1e15 {
        // lint: allow(lossy_cast): whole-number check above makes the cast exact
        format!("{}", c as i64)
    } else {
        format!("{c}")
    }
}

/// Error from parsing a preset file.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead_api): error type of from_papi_format; callers must be able to name it
pub struct PapiParseError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub reason: String,
}

impl std::fmt::Display for PapiParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for PapiParseError {}

/// Parses the line format back into a preset table. Comment-only metadata
/// (`metric="..."`, `err=...`) is recovered when present.
pub fn from_papi_format(text: &str) -> Result<PresetTable, PapiParseError> {
    let mut table = PresetTable { title: String::new(), presets: Vec::new() };
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            if table.title.is_empty()
                && !comment.trim().starts_with("architecture")
                && !comment.trim().starts_with("format")
            {
                table.title = comment.trim().to_string();
            }
            continue;
        }
        // Split off the trailing comment.
        let (body, comment) = match line.split_once('#') {
            Some((b, c)) => (b.trim(), Some(c.trim())),
            None => (line, None),
        };
        let mut fields = body.split(',');
        let tag = fields.next().unwrap_or_default();
        if tag != "PRESET" {
            return Err(PapiParseError {
                line: lineno,
                reason: format!("expected PRESET, got '{tag}'"),
            });
        }
        let symbol = fields
            .next()
            .ok_or_else(|| PapiParseError { line: lineno, reason: "missing symbol".into() })?
            .to_string();
        let kind = fields
            .next()
            .ok_or_else(|| PapiParseError { line: lineno, reason: "missing kind".into() })?;
        if kind != "LINEAR" {
            return Err(PapiParseError {
                line: lineno,
                reason: format!("unsupported kind '{kind}'"),
            });
        }
        let mut terms = Vec::new();
        for term in fields {
            let term = term.trim();
            if term.is_empty() {
                continue;
            }
            let (coeff, event) = term.split_once('*').ok_or_else(|| PapiParseError {
                line: lineno,
                reason: format!("term '{term}' lacks '*'"),
            })?;
            let coefficient: f64 = coeff.parse().map_err(|_| PapiParseError {
                line: lineno,
                reason: format!("bad coefficient '{coeff}'"),
            })?;
            let event: EventName = event.trim().parse().map_err(|e| PapiParseError {
                line: lineno,
                reason: format!("bad event name: {e}"),
            })?;
            terms.push(PresetTerm { coefficient, event });
        }
        // Recover metadata from the comment.
        let mut error = 0.0;
        let mut metric = symbol.clone();
        if let Some(c) = comment {
            for part in c.split_whitespace() {
                if let Some(v) = part.strip_prefix("err=") {
                    error = v.parse().unwrap_or(0.0);
                }
            }
            if let Some(start) = c.find("metric=\"") {
                let rest = &c[start + 8..];
                if let Some(end) = rest.find('"') {
                    metric = rest[..end].to_string();
                }
            }
        }
        table.presets.push(Preset { metric, terms, error });
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> PresetTable {
        PresetTable {
            title: "branch presets".into(),
            presets: vec![
                Preset {
                    metric: "Unconditional Branches.".into(),
                    terms: vec![
                        PresetTerm {
                            coefficient: -1.0,
                            event: "BR_INST_RETIRED:COND".parse().unwrap(),
                        },
                        PresetTerm {
                            coefficient: 1.0,
                            event: "BR_INST_RETIRED:ALL_BRANCHES".parse().unwrap(),
                        },
                    ],
                    error: 1.96e-16,
                },
                Preset {
                    metric: "DP Ops.".into(),
                    terms: vec![PresetTerm {
                        coefficient: 2.5,
                        event: "rocm:::SQ_INSTS_VALU_FMA_F64:device=0".parse().unwrap(),
                    }],
                    error: 0.0,
                },
            ],
        }
    }

    #[test]
    fn symbols_are_papi_style() {
        assert_eq!(preset_symbol("DP Ops."), "CAT_DP_OPS");
        assert_eq!(
            preset_symbol("Conditional Branches Not Taken."),
            "CAT_CONDITIONAL_BRANCHES_NOT_TAKEN"
        );
        assert_eq!(preset_symbol("L1 Misses."), "CAT_L1_MISSES");
        assert_eq!(preset_symbol("HP Add and Sub Ops."), "CAT_HP_ADD_AND_SUB_OPS");
    }

    #[test]
    fn emit_format_shape() {
        let text = to_papi_format("spr-sim", &table());
        assert!(text.contains("# architecture: spr-sim"));
        assert!(
            text.contains("PRESET,CAT_UNCONDITIONAL_BRANCHES,LINEAR,-1*BR_INST_RETIRED:COND,1*BR_INST_RETIRED:ALL_BRANCHES"),
            "{text}"
        );
        assert!(text.contains("err=1.96e-16"));
        assert!(text.contains("2.5*rocm:::SQ_INSTS_VALU_FMA_F64:device=0"));
    }

    #[test]
    fn roundtrip() {
        let original = table();
        let text = to_papi_format("spr-sim", &original);
        let parsed = from_papi_format(&text).unwrap();
        assert_eq!(parsed.presets.len(), 2);
        assert_eq!(parsed.presets[0].metric, "Unconditional Branches.");
        assert_eq!(parsed.presets[0].terms, original.presets[0].terms);
        assert!((parsed.presets[0].error - 1.96e-16).abs() < 1e-18);
        assert_eq!(parsed.presets[1].terms, original.presets[1].terms);
    }

    #[test]
    fn parse_errors_are_located() {
        let err = from_papi_format("JUNK,stuff").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("expected PRESET"));
        let err = from_papi_format("PRESET,X,LINEAR,nocoeff").unwrap_err();
        assert!(err.reason.contains("lacks '*'"));
        let err = from_papi_format("PRESET,X,LINEAR,abc*EV").unwrap_err();
        assert!(err.reason.contains("bad coefficient"));
        let err = from_papi_format("PRESET,X,DERIVED_POSTFIX,1*EV").unwrap_err();
        assert!(err.reason.contains("unsupported kind"));
        let err = from_papi_format("PRESET,X,LINEAR,1*:::bad").unwrap_err();
        assert!(err.reason.contains("bad event name"));
        assert!(from_papi_format("PRESET").unwrap_err().reason.contains("missing symbol"));
        assert!(from_papi_format("PRESET,X").unwrap_err().reason.contains("missing kind"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let parsed = from_papi_format("\n# a title\n\n").unwrap();
        assert_eq!(parsed.title, "a title");
        assert!(parsed.presets.is_empty());
    }
}
