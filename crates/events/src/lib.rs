//! # catalyze-events
//!
//! PAPI-style performance-event naming, catalogs, and derived-metric
//! presets — the vocabulary shared by the simulated hardware
//! (`catalyze-sim`), the benchmarks (`catalyze-cat`), and the analysis
//! pipeline (`catalyze`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod name;
pub(crate) mod papi;
pub mod preset;

pub use catalog::{EventCatalog, EventDomain, EventId, EventInfo};
pub use name::{EventName, ParseNameError, Qualifier};
pub use papi::{from_papi_format, preset_symbol, to_papi_format};
pub use preset::{Preset, PresetTable, PresetTerm};
