//! Derived-metric presets.
//!
//! The end product of the analysis is, for each high-level metric, a linear
//! combination of raw events — exactly what middleware like PAPI ships as
//! "preset" definitions. This module is the output format.

use crate::name::EventName;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `coefficient x event` term of a preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PresetTerm {
    /// Scale factor applied to the event's count.
    pub coefficient: f64,
    /// The raw event.
    pub event: EventName,
}

/// A derived performance metric defined over raw events.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Preset {
    /// Metric name, e.g. `DP Ops.` or `PAPI_DP_OPS`-style identifiers.
    pub metric: String,
    /// Terms of the linear combination (zero-coefficient terms omitted).
    pub terms: Vec<PresetTerm>,
    /// Least-squares backward error of the definition (Eq. 5 of the paper);
    /// near machine epsilon for well-defined metrics, O(1) for metrics the
    /// architecture cannot compose.
    pub error: f64,
}

impl Preset {
    /// True when the backward error is small enough for the definition to
    /// be considered valid (the paper treats ~1e-16 as composable and
    /// ~1e-1..1 as non-composable; `threshold` draws the line).
    pub fn is_composable(&self, threshold: f64) -> bool {
        self.error <= threshold
    }

    /// Evaluates the preset over per-event counts supplied by a lookup.
    ///
    /// `counts` maps an event to its measured count; events missing from
    /// the lookup contribute zero (and are reported via the returned flag).
    pub fn evaluate<F>(&self, counts: F) -> EvaluatedPreset
    where
        F: Fn(&EventName) -> Option<f64>,
    {
        let mut value = 0.0;
        let mut missing = Vec::new();
        for term in &self.terms {
            match counts(&term.event) {
                Some(c) => value += term.coefficient * c,
                None => missing.push(term.event.clone()),
            }
        }
        EvaluatedPreset { value, missing }
    }
}

/// Result of evaluating a preset against measured counts.
#[derive(Debug, Clone, PartialEq)]
// lint: allow(dead_api): result type of Preset evaluation; fields are the caller's read surface
pub struct EvaluatedPreset {
    /// The combined metric value.
    pub value: f64,
    /// Events the lookup could not provide (treated as zero).
    pub missing: Vec<EventName>,
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} (error {:.2e})", self.metric, self.error)?;
        for (i, t) in self.terms.iter().enumerate() {
            let sign = if t.coefficient < 0.0 {
                "-"
            } else if i == 0 {
                ""
            } else {
                "+"
            };
            let mag = t.coefficient.abs();
            writeln!(f, "  {sign} {mag} x {}", t.event)?;
        }
        Ok(())
    }
}

/// A named collection of presets for one architecture/domain.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PresetTable {
    /// Human-readable table title.
    pub title: String,
    /// The preset definitions.
    pub presets: Vec<Preset>,
}

impl PresetTable {
    /// Finds a preset by metric name.
    pub fn get(&self, metric: &str) -> Option<&Preset> {
        self.presets.iter().find(|p| p.metric == metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preset() -> Preset {
        Preset {
            metric: "DP Ops.".into(),
            terms: vec![
                PresetTerm {
                    coefficient: 2.0,
                    event: "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE".parse().unwrap(),
                },
                PresetTerm {
                    coefficient: 1.0,
                    event: "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE".parse().unwrap(),
                },
            ],
            error: 1.7e-19,
        }
    }

    #[test]
    fn composability_threshold() {
        let p = preset();
        assert!(p.is_composable(1e-6));
        let bad = Preset { error: 1.0, ..p };
        assert!(!bad.is_composable(1e-6));
    }

    #[test]
    fn evaluate_combines_counts() {
        let p = preset();
        let out =
            p.evaluate(|e| if e.to_string().contains("128B") { Some(10.0) } else { Some(5.0) });
        assert_eq!(out.value, 25.0);
        assert!(out.missing.is_empty());
    }

    #[test]
    fn evaluate_reports_missing() {
        let p = preset();
        let out = p.evaluate(|e| if e.to_string().contains("SCALAR") { Some(4.0) } else { None });
        assert_eq!(out.value, 4.0);
        assert_eq!(out.missing.len(), 1);
    }

    #[test]
    fn display_has_signs() {
        let mut p = preset();
        p.terms[1].coefficient = -1.0;
        let s = p.to_string();
        assert!(s.contains("2 x FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE"), "{s}");
        assert!(s.contains("- 1 x FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"), "{s}");
    }

    #[test]
    fn table_lookup() {
        let t = PresetTable { title: "t".into(), presets: vec![preset()] };
        assert!(t.get("DP Ops.").is_some());
        assert!(t.get("nope").is_none());
    }

    #[test]
    fn serde_roundtrip() {
        let p = preset();
        let json = serde_json::to_string(&p).unwrap();
        let back: Preset = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
