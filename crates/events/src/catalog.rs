//! Event catalogs: the inventory of raw events an architecture exposes.

use crate::name::EventName;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Opaque, catalog-local event identifier (a dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EventId(pub u32);

impl EventId {
    /// The underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Broad hardware domain an event belongs to. Used only for reporting and
/// catalog browsing — the analysis itself never needs it (that is the point
/// of the paper: the pipeline discovers event semantics from data).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventDomain {
    /// Floating-point unit events.
    FloatingPoint,
    /// Branch unit events.
    Branch,
    /// Data-cache / memory-hierarchy events.
    Memory,
    /// Frontend / decode / uop-delivery events.
    Frontend,
    /// Core-clock and cycle-style events.
    Cycles,
    /// TLB events.
    Tlb,
    /// Uncore / offcore / interconnect events.
    Uncore,
    /// Operating-system or software-defined events.
    Software,
    /// GPU compute-unit events.
    Gpu,
    /// Anything else.
    Other,
}

impl fmt::Display for EventDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventDomain::FloatingPoint => "floating-point",
            EventDomain::Branch => "branch",
            EventDomain::Memory => "memory",
            EventDomain::Frontend => "frontend",
            EventDomain::Cycles => "cycles",
            EventDomain::Tlb => "tlb",
            EventDomain::Uncore => "uncore",
            EventDomain::Software => "software",
            EventDomain::Gpu => "gpu",
            EventDomain::Other => "other",
        };
        f.write_str(s)
    }
}

/// Descriptive information about one raw event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventInfo {
    /// Fully qualified name.
    pub name: EventName,
    /// Vendor-style description (often terse or vague, as on real machines).
    pub description: String,
    /// Broad domain tag.
    pub domain: EventDomain,
}

/// An immutable, indexable inventory of events.
///
/// The name index is an ordered map so that every view of the catalog —
/// id-order iteration, name-order iteration, serialized form — is
/// deterministic across processes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventCatalog {
    events: Vec<EventInfo>,
    #[serde(skip)]
    by_name: BTreeMap<String, EventId>,
}

impl EventCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an event, returning its id. Duplicate names are rejected.
    pub fn add(&mut self, info: EventInfo) -> Result<EventId, DuplicateEvent> {
        let key = info.name.to_string();
        if self.by_name.contains_key(&key) {
            return Err(DuplicateEvent { name: key });
        }
        let id = EventId(self.events.len() as u32);
        self.by_name.insert(key, id);
        self.events.push(info);
        Ok(id)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the catalog holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Looks up an event id by its string name.
    pub fn id_of(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// Event info by id.
    pub fn info(&self, id: EventId) -> Option<&EventInfo> {
        self.events.get(id.index())
    }

    /// Iterates `(id, info)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &EventInfo)> {
        self.events.iter().enumerate().map(|(i, e)| (EventId(i as u32), e))
    }

    /// Ids of events in the given domain.
    pub fn ids_in_domain(&self, domain: EventDomain) -> Vec<EventId> {
        self.iter().filter(|(_, e)| e.domain == domain).map(|(id, _)| id).collect()
    }

    /// Iterates `(name, id)` pairs in lexicographic name order — the
    /// stable order for rendered listings.
    pub fn iter_by_name(&self) -> impl Iterator<Item = (&str, EventId)> {
        self.by_name.iter().map(|(n, &id)| (n.as_str(), id))
    }

    /// Rebuilds the name index (needed after deserialization, where the
    /// index is skipped).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .events
            .iter()
            .enumerate()
            .map(|(i, e)| (e.name.to_string(), EventId(i as u32)))
            .collect();
    }
}

/// Error: an event with the same name already exists in the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
// lint: allow(dead_api): error type of EventCatalog::add; callers must be able to name it
pub struct DuplicateEvent {
    /// The duplicated name.
    pub name: String,
}

impl fmt::Display for DuplicateEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "duplicate event name: {}", self.name)
    }
}

impl std::error::Error for DuplicateEvent {}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(name: &str, domain: EventDomain) -> EventInfo {
        EventInfo { name: name.parse().unwrap(), description: format!("desc of {name}"), domain }
    }

    #[test]
    fn add_and_lookup() {
        let mut cat = EventCatalog::new();
        let id = cat.add(info("CYCLES", EventDomain::Cycles)).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.id_of("CYCLES"), Some(id));
        assert_eq!(cat.info(id).unwrap().domain, EventDomain::Cycles);
        assert_eq!(cat.id_of("NOPE"), None);
        assert!(cat.info(EventId(99)).is_none());
    }

    #[test]
    fn duplicates_rejected() {
        let mut cat = EventCatalog::new();
        cat.add(info("A", EventDomain::Other)).unwrap();
        let err = cat.add(info("A", EventDomain::Other)).unwrap_err();
        assert_eq!(err.name, "A");
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn domain_filter() {
        let mut cat = EventCatalog::new();
        cat.add(info("A", EventDomain::Branch)).unwrap();
        cat.add(info("B", EventDomain::Memory)).unwrap();
        cat.add(info("C", EventDomain::Branch)).unwrap();
        let branch = cat.ids_in_domain(EventDomain::Branch);
        assert_eq!(branch.len(), 2);
        assert_eq!(branch[0].index(), 0);
        assert_eq!(branch[1].index(), 2);
    }

    #[test]
    fn serde_roundtrip_rebuilds_index() {
        let mut cat = EventCatalog::new();
        cat.add(info("X:Q", EventDomain::FloatingPoint)).unwrap();
        let json = serde_json::to_string(&cat).unwrap();
        let mut back: EventCatalog = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id_of("X:Q"), None, "index skipped by serde");
        back.rebuild_index();
        assert_eq!(back.id_of("X:Q"), Some(EventId(0)));
    }

    #[test]
    fn iteration_order_is_id_order() {
        let mut cat = EventCatalog::new();
        for n in ["A", "B", "C"] {
            cat.add(info(n, EventDomain::Other)).unwrap();
        }
        let names: Vec<String> = cat.iter().map(|(_, e)| e.name.to_string()).collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn name_order_iteration_is_lexicographic() {
        let mut cat = EventCatalog::new();
        for n in ["CYCLES", "A:B", "BR_MISP"] {
            cat.add(info(n, EventDomain::Other)).unwrap();
        }
        let names: Vec<&str> = cat.iter_by_name().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["A:B", "BR_MISP", "CYCLES"]);
    }

    /// Renders the same catalog repeatedly through every view and demands
    /// byte-identical output each time — the determinism contract that a
    /// hash-ordered index silently breaks.
    #[test]
    fn repeated_renders_are_byte_identical() {
        let build = || {
            let mut cat = EventCatalog::new();
            for (n, d) in [
                ("CPU_CLK_UNHALTED:THREAD", EventDomain::Cycles),
                ("BR_INST_RETIRED:COND", EventDomain::Branch),
                ("MEM_LOAD_RETIRED:L1_HIT", EventDomain::Memory),
                ("FP_ARITH:SCALAR_DOUBLE", EventDomain::FloatingPoint),
            ] {
                cat.add(info(n, d)).unwrap();
            }
            cat
        };
        let render = |cat: &EventCatalog| -> String {
            let mut out = String::new();
            for (id, e) in cat.iter() {
                out.push_str(&format!("{} {} {}\n", id.index(), e.name, e.domain));
            }
            for (n, id) in cat.iter_by_name() {
                out.push_str(&format!("{n} -> {}\n", id.index()));
            }
            out.push_str(&serde_json::to_string(cat).unwrap());
            out
        };
        let first = render(&build());
        for _ in 0..8 {
            assert_eq!(render(&build()), first, "catalog render must be reproducible");
        }
    }
}
